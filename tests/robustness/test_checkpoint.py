"""Checkpoint capture/restore: format safety and resume identity.

The contract under test: interrupting a run at *any* decision budget and
resuming it must reproduce the uninterrupted run exactly — same outcome,
same total decision count, same learned-constraint counts — on both
propagation backends and for both the TO and PO pipelines, certified or
not. A snapshot that is torn, garbled, or belongs to another formula or
configuration must be rejected with :class:`CheckpointError` and never
crash or silently corrupt a run.
"""

import json
import random

import pytest

from repro.core.formula import paper_example
from repro.core.result import Outcome
from repro.core.solver import ENGINES, QdpllSolver, SolverConfig
from repro.evalx.runner import Budget, solve_po, solve_to
from repro.generators.ncf import NcfParams, generate_ncf
from repro.robustness import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.robustness.checkpoint import Checkpoint, config_digest, formula_digest


def small_ncf(seed, dep=6, var=3, ratio=3, lpc=5):
    return generate_ncf(
        NcfParams(dep=dep, var=var, cls=ratio * var, lpc=lpc, seed=seed)
    )


def make_checkpoint(tmp_path, formula, decisions=3, name="a.ckpt", **cfg):
    """Run to a small budget with checkpointing on; return the saved path."""
    path = str(tmp_path / name)
    config = SolverConfig(max_decisions=decisions, **cfg)
    result = QdpllSolver(formula, config).solve(checkpoint_to=path)
    assert result.outcome is Outcome.UNKNOWN
    return path


class TestFileFormat:
    def test_roundtrip(self, tmp_path):
        path = make_checkpoint(tmp_path, small_ncf(0))
        ckpt = load_checkpoint(path)
        again = str(tmp_path / "b.ckpt")
        save_checkpoint(ckpt, again)
        assert load_checkpoint(again).to_payload() == ckpt.to_payload()

    def test_truncated_file_rejected(self, tmp_path):
        path = make_checkpoint(tmp_path, small_ncf(0))
        blob = open(path).read()
        for cut in (1, len(blob) // 3, len(blob) - 2):
            open(path, "w").write(blob[:cut])
            with pytest.raises(CheckpointError):
                load_checkpoint(path)

    def test_garbled_payload_rejected(self, tmp_path):
        path = make_checkpoint(tmp_path, small_ncf(0))
        header, payload = open(path).read().split("\n", 1)
        assert '"formula_digest"' in payload
        open(path, "w").write(
            header + "\n" + payload.replace('"formula_digest"', '"formula_digesX"')
        )
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = make_checkpoint(tmp_path, small_ncf(0))
        header, payload = open(path).read().split("\n", 1)
        head = json.loads(header)
        head["version"] = 999
        open(path, "w").write(json.dumps(head) + "\n" + payload)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_not_json_rejected(self, tmp_path):
        path = str(tmp_path / "junk.ckpt")
        open(path, "w").write("this is not a checkpoint\n")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_bad_payload_shape_rejected(self):
        with pytest.raises(CheckpointError):
            Checkpoint.from_payload({"formula_digest": "x"})


class TestDigestGuards:
    def test_wrong_formula_rejected(self, tmp_path):
        path = make_checkpoint(tmp_path, small_ncf(0))
        with pytest.raises(CheckpointError):
            QdpllSolver(small_ncf(1), SolverConfig()).solve(resume_from=path)

    def test_wrong_config_rejected(self, tmp_path):
        phi = small_ncf(0)
        path = make_checkpoint(tmp_path, phi)
        with pytest.raises(CheckpointError):
            QdpllSolver(
                phi, SolverConfig(pure_literals=False)
            ).solve(resume_from=path)

    def test_bigger_budget_is_compatible(self, tmp_path):
        # Budgets are deliberately outside the config digest: resuming with
        # a larger budget is the whole point of a budget-exhausted snapshot.
        phi = small_ncf(0)
        path = make_checkpoint(tmp_path, phi, decisions=3)
        result = QdpllSolver(
            phi, SolverConfig(max_decisions=100000)
        ).solve(resume_from=path)
        assert result.outcome is not Outcome.UNKNOWN

    def test_cross_engine_resume_is_compatible(self, tmp_path):
        # The engines are decision-for-decision identical by contract, so
        # the engine choice is cost accounting, not solver state.
        phi = small_ncf(0)
        path = make_checkpoint(tmp_path, phi, engine="counters")
        baseline = QdpllSolver(phi, SolverConfig(max_decisions=100000)).solve()
        resumed = QdpllSolver(
            phi, SolverConfig(max_decisions=100000, engine="watched")
        ).solve(resume_from=path)
        assert resumed.outcome is baseline.outcome
        assert resumed.stats.decisions == baseline.stats.decisions

    def test_digest_functions_are_stable(self):
        phi = paper_example()
        assert formula_digest(phi) == formula_digest(paper_example())
        assert config_digest(SolverConfig()) == config_digest(SolverConfig())
        assert config_digest(SolverConfig()) != config_digest(
            SolverConfig(pure_literals=False)
        )
        # budget and engine are excluded on purpose
        assert config_digest(SolverConfig()) == config_digest(
            SolverConfig(max_decisions=7, engine="watched")
        )


#: every SolverStats counter a resumed run must reproduce exactly; the
#: propagation-layer observability counters (clause/cube visits, watcher
#: swaps) are engine-dependent cost accounting backed by memos the
#: checkpoint deliberately does not carry.
SEMANTIC_STATS = (
    "decisions", "propagations", "pure_literals", "conflicts", "solutions",
    "learned_clauses", "learned_cubes", "learned_clause_lits",
    "learned_cube_lits", "backjumps", "chrono_backtracks", "max_trail",
)


def assert_same_run(resumed, baseline):
    assert resumed.outcome is baseline.outcome
    for name in SEMANTIC_STATS:
        assert getattr(resumed.stats, name) == getattr(baseline.stats, name), name
    assert resumed.certificate_status == baseline.certificate_status


class TestResumeIdentity:
    """The property test: interrupt anywhere, resume, get the same run."""

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    @pytest.mark.parametrize("mode", ["po", "to"])
    def test_interrupt_anywhere_and_resume(self, tmp_path, engine, mode):
        rng = random.Random(hash((engine, mode)) & 0xFFFF)
        runner = solve_po if mode == "po" else solve_to
        checked = 0
        for seed in range(6):
            phi = small_ncf(seed)
            big = Budget(decisions=50000)
            baseline = runner(phi, budget=big, engine=engine)
            if baseline.decisions < 2:
                continue
            checked += 1
            for k in sorted({1, rng.randint(1, baseline.decisions - 1),
                             baseline.decisions - 1}):
                path = str(tmp_path / ("%s-%s-%d-%d.ckpt" % (engine, mode, seed, k)))
                cut = runner(
                    phi, budget=Budget(decisions=k), engine=engine,
                    checkpoint_to=path,
                )
                assert cut.outcome is Outcome.UNKNOWN
                assert cut.decisions == k
                resumed = runner(
                    phi, budget=big, engine=engine,
                    resume_from=load_checkpoint(path),
                )
                assert_same_run(resumed, baseline)
        assert checked >= 3  # the sweep must actually exercise the property

    @pytest.mark.parametrize("mode", ["po", "to"])
    def test_certified_resume_identity(self, tmp_path, mode):
        runner = solve_po if mode == "po" else solve_to
        rng = random.Random(99 if mode == "po" else 98)
        checked = 0
        # lpc=4 keeps the no-pure-literal certified runs tractable; dep 5
        # gives FALSE verdicts, dep 4 TRUE, so both calculi are resumed.
        for seed, dep in [(0, 5), (1, 5), (0, 4), (1, 4)]:
            phi = small_ncf(seed, dep=dep, lpc=4)
            big = Budget(decisions=50000)
            baseline = runner(phi, budget=big, certify=True)
            if baseline.decisions < 2:
                continue
            checked += 1
            assert baseline.certificate_status == "verified"
            k = rng.randint(1, baseline.decisions - 1)
            path = str(tmp_path / ("cert-%s-%d-%d.ckpt" % (mode, dep, seed)))
            cut = runner(
                phi, budget=Budget(decisions=k), certify=True,
                checkpoint_to=path,
            )
            assert cut.outcome is Outcome.UNKNOWN
            resumed = runner(
                phi, budget=big, certify=True,
                resume_from=load_checkpoint(path),
            )
            # One continuous derivation: the resumed run's certificate must
            # verify, not just its outcome match.
            assert_same_run(resumed, baseline)
        assert checked >= 2

    def test_seconds_accumulate_across_resume(self, tmp_path):
        phi = small_ncf(0)
        path = make_checkpoint(tmp_path, phi, decisions=5)
        spent = load_checkpoint(path).seconds
        assert spent > 0.0
        result = QdpllSolver(
            phi, SolverConfig(max_decisions=100000)
        ).solve(resume_from=path)
        assert result.seconds >= spent

    def test_corrupt_checkpoint_falls_back_to_fresh(self, tmp_path):
        # The measurement layer discards an unusable snapshot and reruns
        # from scratch rather than crashing the sweep.
        phi = small_ncf(0)
        foreign = make_checkpoint(tmp_path, small_ncf(1))
        baseline = solve_po(phi, budget=Budget(decisions=50000))
        resumed = solve_po(
            phi, budget=Budget(decisions=50000),
            resume_from=load_checkpoint(foreign),
        )
        assert_same_run(resumed, baseline)
