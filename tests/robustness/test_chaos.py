"""Chaos suite: the harness must converge to fault-free results under fire.

A seeded :class:`FaultPlan` schedules one worker crash, one hang, one torn
results-file append and one truncated checkpoint across a small sweep. The
sweep — retries, kill escalation, torn-line tolerance, checkpoint fallback
and all — must terminate and produce measurements identical (modulo
wall-clock seconds) to the same sweep run with no faults at all.
"""

import json
import os

import pytest

from repro.evalx.parallel import (
    ResultsLog,
    STATUS_OK,
    Task,
    measurement_to_dict,
    measurements_by_key,
    run_tasks,
)
from repro.evalx.runner import Budget
from repro.generators.ncf import NcfParams, generate_ncf
from repro.robustness.faults import (
    CRASH,
    FaultPlan,
    HANG,
    InjectedFault,
    TORN_APPEND,
    TORN_CHECKPOINT,
)


def sweep_tasks(n=6, budget=Budget(decisions=400)):
    tasks = []
    for seed in range(n):
        phi = generate_ncf(NcfParams(dep=5, var=3, cls=9, lpc=4, seed=seed))
        tasks.append(
            Task(instance="ncf-%d" % seed, solver="PO", formula=phi, budget=budget)
        )
    return tasks


def comparable(records):
    """Measurement dicts keyed by (instance, solver), wall-clock dropped."""
    out = {}
    for key, m in measurements_by_key(records).items():
        d = measurement_to_dict(m)
        d.pop("seconds", None)
        out[key] = d
    return out


class TestFaultPlan:
    def test_bind_is_deterministic_and_disjoint(self):
        labels = ["i%d|PO" % k for k in range(8)]
        a = FaultPlan(seed=3, crashes=1, hangs=1, torn_appends=1, torn_checkpoints=1)
        b = FaultPlan(seed=3, crashes=1, hangs=1, torn_appends=1, torn_checkpoints=1)
        a.bind(labels)
        b.bind(reversed(labels))  # order of discovery must not matter
        assert a.assignments == b.assignments
        assert len(a.assignments) == 4  # four distinct victims
        assert sorted(a.assignments.values()) == sorted(
            [CRASH, HANG, TORN_APPEND, TORN_CHECKPOINT]
        )

    def test_different_seed_different_victims(self):
        labels = ["i%d|PO" % k for k in range(20)]
        a = FaultPlan(seed=1, crashes=2)
        b = FaultPlan(seed=2, crashes=2)
        a.bind(labels)
        b.bind(labels)
        assert a.assignments != b.assignments

    def test_roundtrip_through_file(self, tmp_path):
        plan = FaultPlan(seed=7, crashes=1, hangs=2, hang_seconds=9.0)
        plan.bind(["a|PO", "b|PO", "c|PO", "d|PO"])
        path = str(tmp_path / "plan.json")
        with open(path, "w") as fh:
            json.dump(plan.to_dict(), fh)
        back = FaultPlan.from_file(path)
        assert back.assignments == plan.assignments
        assert back.hang_seconds == 9.0

    def test_crash_fires_once(self):
        plan = FaultPlan(assignments={"a|PO": CRASH})
        task = Task(
            instance="a", solver="PO",
            formula=generate_ncf(NcfParams(dep=4, var=3, cls=9, lpc=4, seed=0)),
        )
        with pytest.raises(InjectedFault):
            plan.on_worker_start(task, attempt=1)
        plan.on_worker_start(task, attempt=2)  # retries run clean

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(assignments={"a|PO": "meteor-strike"})


class TestTornAppend:
    def test_torn_final_line_then_resume(self, tmp_path):
        # First sweep tears the last row's append mid-line; the rerun must
        # tolerate the fragment, re-run only the lost task, and end with a
        # complete results file.
        path = str(tmp_path / "r.jsonl")
        tasks = sweep_tasks(3)
        victim = "%s|%s" % (tasks[-1].instance, tasks[-1].solver)
        plan = FaultPlan(assignments={victim: TORN_APPEND})
        log = ResultsLog(path, faults=plan)
        run_tasks(tasks, jobs=1, results=log)
        log.close()
        raw = open(path).read()
        assert not raw.endswith("\n")  # the tear really happened
        assert len(ResultsLog(path).load()) == len(tasks) - 1

        log2 = ResultsLog(path)
        records = run_tasks(tasks, jobs=1, results=log2)
        log2.close()
        assert len(ResultsLog(path).load()) == len(tasks)
        assert sorted(r.instance for r in records) == sorted(
            t.instance for t in tasks
        )

    def test_durable_append_fsyncs(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd) or real_fsync(fd))
        path = str(tmp_path / "d.jsonl")
        log = ResultsLog(path)
        run_tasks(sweep_tasks(2), jobs=1, results=log)
        log.close()
        assert len(synced) >= 2  # one fsync per acknowledged row

        synced.clear()
        log = ResultsLog(str(tmp_path / "nd.jsonl"), durable=False)
        run_tasks(sweep_tasks(2), jobs=1, results=log)
        log.close()
        assert synced == []


class TestChaosSweep:
    def test_sweep_converges_to_fault_free_results(self, tmp_path):
        tasks = sweep_tasks(6)
        baseline = run_tasks(tasks, jobs=2, wall_timeout=20.0)
        want = comparable(baseline)
        assert len(want) == len(tasks)
        assert all(r.status == STATUS_OK for r in baseline)

        plan = FaultPlan(
            seed=5, crashes=1, hangs=1, torn_appends=1, torn_checkpoints=1,
            hang_seconds=30.0,
        )
        results = str(tmp_path / "chaos.jsonl")
        ckdir = str(tmp_path / "ckpts")
        log = ResultsLog(results, faults=plan)
        records = run_tasks(
            tasks,
            jobs=2,
            results=log,
            wall_timeout=2.0,       # cuts the hang; real runs finish well under
            term_grace=0.3,
            retry_backoff=0.05,
            faults=plan,
            checkpoint_dir=ckdir,
        )
        log.close()
        # every scheduled fault found a victim
        assert sorted(plan.assignments.values()) == sorted(
            [CRASH, HANG, TORN_APPEND, TORN_CHECKPOINT]
        )
        # ...and the sweep still produced the fault-free measurements
        assert comparable(records) == want
        assert all(r.status == STATUS_OK for r in records)
        retried = [r for r in records if r.attempts > 1]
        assert retried, "the crash and the hang should have cost retries"
        crash_victims = [l for l, k in plan.assignments.items() if k == CRASH]
        backoffs = {
            "%s|%s" % (r.instance, r.solver): r.backoff for r in records
        }
        assert all(backoffs[v] > 0 for v in crash_victims)

        # a second pass over the same (torn) results file heals it
        log = ResultsLog(results)
        again = run_tasks(tasks, jobs=2, results=log, wall_timeout=20.0)
        log.close()
        assert comparable(again) == want
        assert len(ResultsLog(results).load()) >= len(tasks)

    def test_serial_sweep_survives_crash_faults(self, tmp_path):
        # jobs=1 has no worker processes to kill, but crash faults and torn
        # appends still exercise the in-process retry path.
        tasks = sweep_tasks(4)
        want = comparable(run_tasks(tasks, jobs=1))
        plan = FaultPlan(seed=11, crashes=2, torn_appends=1)
        results = str(tmp_path / "serial.jsonl")
        log = ResultsLog(results, faults=plan)
        records = run_tasks(
            tasks, jobs=1, results=log, retry_backoff=0.01, faults=plan,
        )
        log.close()
        assert comparable(records) == want
        assert sum(1 for r in records if r.backoff > 0) == 2


class TestFlipVerdict:
    def test_flip_verdict_round_trips_and_fires_every_time(self):
        from repro.robustness.faults import FLIP_VERDICT

        plan = FaultPlan(assignments={"x|EXP": FLIP_VERDICT})
        back = FaultPlan.from_dict(plan.to_dict())
        # not one-shot: a rerun with the same plan must disagree the same way
        for _ in range(3):
            assert back.flips_verdict("x|EXP")
        assert not back.flips_verdict("x|PO")

    def test_flip_verdict_counts_bind_like_other_kinds(self):
        from repro.robustness.faults import FLIP_VERDICT

        plan = FaultPlan(seed=5, flip_verdicts=1)
        plan.bind(["a|PO", "a|TO", "a|EXP"])
        flipped = [l for l in ("a|PO", "a|TO", "a|EXP") if plan.flips_verdict(l)]
        assert len(flipped) == 1
        assert plan.to_dict()["flip_verdicts"] == 1
