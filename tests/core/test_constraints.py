"""Tests for clauses/cubes and the Lemma-3 reductions."""

import pytest

from repro.core.constraints import (
    Clause,
    Cube,
    existential_reduce,
    is_contradictory,
    is_trivially_true,
    resolve,
    unit_literal,
    universal_reduce,
)
from repro.core.formula import paper_example
from repro.core.literals import EXISTS, FORALL
from repro.core.prefix import Prefix


@pytest.fixture
def eae():
    """∃x1 ∀y2 ∃x3 — the minimal alternating prefix."""
    return Prefix.linear([(EXISTS, [1]), (FORALL, [2]), (EXISTS, [3])])


class TestConstraintBasics:
    def test_clause_is_canonical(self):
        assert Clause([3, -1]).lits == (-1, 3)

    def test_cube_flag(self):
        assert Cube([1]).is_cube
        assert not Clause([1]).is_cube

    def test_equality_distinguishes_kind(self):
        assert Clause([1, 2]) == Clause([2, 1])
        assert Clause([1, 2]) != Cube([1, 2])

    def test_rejects_opposite_literals(self):
        with pytest.raises(ValueError):
            Clause([1, -1])

    def test_len_iter_contains(self):
        c = Clause([1, -2, 3])
        assert len(c) == 3
        assert set(c) == {1, -2, 3}
        assert -2 in c and 2 not in c


class TestUniversalReduce:
    def test_drops_trailing_universal(self, eae):
        # y2 has no existential in its scope inside {1, 2}: x1 is before it.
        assert universal_reduce((1, 2), eae) == (1,)

    def test_keeps_blocking_universal(self, eae):
        # x3 is in the scope of y2, so y2 stays in {2, 3}.
        assert universal_reduce((2, 3), eae) == (2, 3)

    def test_all_universal_reduces_to_empty(self, eae):
        assert universal_reduce((2,), eae) == ()
        assert universal_reduce((-2,), eae) == ()

    def test_preserves_polarity(self, eae):
        assert universal_reduce((-1, -2), eae) == (-1,)

    def test_tree_prefix_reduces_cross_branch(self):
        # In the paper example, y1 (var 2) scopes over x1, x2 (3, 4) but not
        # x3, x4 (6, 7): a clause {y1, x3} loses y1.
        p = paper_example().prefix
        assert universal_reduce((2, 6), p) == (6,)
        assert universal_reduce((2, 3), p) == (2, 3)


class TestExistentialReduce:
    def test_drops_trailing_existential(self, eae):
        # x3 is after every universal of the cube {2, 3}; it is dropped.
        assert existential_reduce((2, 3), eae) == (2,)

    def test_keeps_blocking_existential(self, eae):
        # x1 is before y2, so it stays in the cube {1, 2}.
        assert existential_reduce((1, 2), eae) == (1, 2)

    def test_all_existential_reduces_to_empty(self, eae):
        assert existential_reduce((1, 3), eae) == ()

    def test_tree_prefix_drops_cross_branch_existential(self):
        # Section VII-C shape: existentials on another branch than the
        # universal are reduced away under the tree prefix.
        p = paper_example().prefix
        # cube {x1, y2}: x1 (var 3) is not before y2 (var 5) in the tree.
        assert existential_reduce((3, 5), p) == (5,)
        # cube {x0, y2}: x0 (var 1) is before y2, kept.
        assert existential_reduce((1, 5), p) == (1, 5)


class TestContradictionAndTriviality:
    def test_contradictory(self, eae):
        assert is_contradictory((2,), eae)
        assert is_contradictory((), eae)
        assert not is_contradictory((1, 2), eae)

    def test_trivially_true_cube(self, eae):
        assert is_trivially_true((1, 3), eae)
        assert not is_trivially_true((1, 2), eae)


class TestUnitLiteral:
    def test_simple_unit(self, eae):
        assert unit_literal((1,), eae) == 1
        assert unit_literal((-3,), eae) == -3

    def test_unit_with_nonblocking_universal(self, eae):
        # {x1, y2}: y2 is not before x1 — unit on x1.
        assert unit_literal((1, 2), eae) == 1

    def test_not_unit_with_blocking_universal(self, eae):
        # {y2, x3}: x3 is in the scope of y2 — not unit.
        assert unit_literal((2, 3), eae) is None

    def test_not_unit_with_two_existentials(self, eae):
        assert unit_literal((1, 3), eae) is None

    def test_tree_unit_across_branches(self):
        # Paper Section V: nogood {y1, x2, x3, x4}-style constraints remain
        # unit-capable under the tree where the total order would block them.
        p = paper_example().prefix
        # {x3, y1}: y1 (2) does not precede x3 (6) in the tree → unit.
        assert unit_literal((6, 2), p) == 6


class TestResolve:
    def test_basic_resolution(self):
        assert resolve((1, 2), (-1, 3), 1) == (2, 3)

    def test_merges_shared_literals(self):
        assert resolve((1, 2, 3), (-1, 2), 1) == (2, 3)

    def test_tautology_returns_none(self):
        assert resolve((1, 2), (-1, -2), 1) is None

    def test_empty_resolvent(self):
        assert resolve((1,), (-1,), 1) == ()
