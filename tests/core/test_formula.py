"""Tests for the QBF container."""

import pytest

from repro.core.formula import QBF, paper_example
from repro.core.literals import EXISTS, FORALL
from repro.core.prefix import Prefix


class TestConstruction:
    def test_prenex_constructor(self):
        phi = QBF.prenex([(EXISTS, [1]), (FORALL, [2])], [(1, 2)])
        assert phi.is_prenex
        assert phi.num_vars == 2
        assert phi.num_clauses == 1

    def test_unbound_variable_rejected(self):
        with pytest.raises(ValueError):
            QBF.prenex([(EXISTS, [1])], [(1, 2)])

    def test_close_binds_free_variables_on_top(self):
        phi = QBF.close(Prefix.linear([(FORALL, [2])]), [(1, 2), (3,)])
        assert phi.prefix.quant(1) is EXISTS
        assert phi.prefix.quant(3) is EXISTS
        assert phi.prefix.prec(1, 2)
        assert phi.prefix.level(1) == 1

    def test_is_sat(self):
        assert QBF.prenex([(EXISTS, [1, 2])], [(1, 2)]).is_sat
        assert not paper_example().is_sat


class TestAssign:
    def test_assign_satisfies_and_shrinks(self):
        phi = QBF.prenex([(EXISTS, [1, 2])], [(1, 2), (-1, 2)])
        psi = phi.assign(1)
        assert psi.num_clauses == 1
        assert psi.clauses[0].lits == (2,)
        assert 1 not in psi.prefix

    def test_assign_can_produce_empty_clause(self):
        phi = QBF.prenex([(EXISTS, [1])], [(-1,)])
        assert phi.assign(1).has_empty_clause()

    def test_assign_negative_literal(self):
        phi = QBF.prenex([(EXISTS, [1, 2])], [(-1, 2)])
        psi = phi.assign(-1)
        assert psi.num_clauses == 0


class TestRenamed:
    def test_renaming_applies_to_prefix_and_matrix(self):
        phi = QBF.prenex([(EXISTS, [1]), (FORALL, [2])], [(1, -2)])
        psi = phi.renamed({1: 10, 2: 20})
        assert psi.prefix.quant(10) is EXISTS
        assert psi.prefix.quant(20) is FORALL
        assert psi.clauses[0].lits == (10, -20)

    def test_non_injective_renaming_rejected(self):
        phi = QBF.prenex([(EXISTS, [1, 2])], [(1, 2)])
        with pytest.raises(ValueError):
            phi.renamed({1: 5, 2: 5})


class TestDunder:
    def test_equality_is_structural(self):
        a = QBF.prenex([(EXISTS, [1])], [(1,)])
        b = QBF.prenex([(EXISTS, [1])], [(1,)])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_matrix(self):
        a = QBF.prenex([(EXISTS, [1])], [(1,)])
        b = QBF.prenex([(EXISTS, [1])], [(-1,)])
        assert a != b

    def test_pretty_contains_clauses(self):
        text = paper_example().pretty()
        assert "∨" in text and "∃" in text


class TestPaperExample:
    def test_shape(self):
        phi = paper_example()
        assert phi.num_vars == 7
        assert phi.num_clauses == 8
        assert not phi.is_prenex
        assert phi.prefix.prefix_level == 3

    def test_occurrence_counts(self):
        counts = paper_example().occurrence_counts()
        assert counts[1] == 2  # x0 occurs positively twice
        assert counts[2] == 1  # y1 once
        assert sum(counts.values()) == sum(len(c) for c in paper_example().clauses)
