"""Unit tests for conflict/solution analysis with a scripted trail."""

import pytest

from repro.core.constraints import Clause, Cube
from repro.core.learning import (
    Backjump,
    Fallback,
    Terminal,
    TrailView,
    analyze_conflict,
    analyze_solution,
    build_model_cube,
)
from repro.core.literals import EXISTS, FORALL
from repro.core.prefix import Prefix


class FakeTrail:
    """A hand-built assignment: var -> (value, level, pos, reason)."""

    def __init__(self, prefix, entries):
        self.prefix = prefix
        self.entries = entries

    def view(self) -> TrailView:
        def value(lit):
            v = abs(lit)
            if v not in self.entries:
                return None
            val = self.entries[v][0]
            return val if lit > 0 else not val

        return TrailView(
            value=value,
            level_of=lambda v: self.entries[v][1],
            pos_of=lambda v: self.entries[v][2],
            reason_of=lambda v: self.entries[v][3],
            prefix=self.prefix,
        )


@pytest.fixture
def eae_prefix():
    """∃x1 x2 ∀y3 ∃x4 x5."""
    return Prefix.linear([(EXISTS, [1, 2]), (FORALL, [3]), (EXISTS, [4, 5])])


class TestClauseAnalysis:
    def test_terminal_on_all_universal(self, eae_prefix):
        trail = FakeTrail(eae_prefix, {3: (False, 1, 0, None)})
        out = analyze_conflict((3,), trail.view())
        assert isinstance(out, Terminal)

    def test_terminal_at_level_zero(self, eae_prefix):
        trail = FakeTrail(eae_prefix, {1: (False, 0, 0, None)})
        out = analyze_conflict((1,), trail.view())
        assert isinstance(out, Terminal)

    def test_asserting_clause_backjump(self, eae_prefix):
        # x1 decided false at level 1, x2 decided false at level 2; the
        # clause (1 2) is unit at level 1, asserting x2... the deeper
        # literal is the asserting one.
        trail = FakeTrail(
            eae_prefix,
            {1: (False, 1, 0, None), 2: (False, 2, 1, None)},
        )
        out = analyze_conflict((1, 2), trail.view())
        assert isinstance(out, Backjump)
        assert out.assert_lit == 2
        assert out.level == 1
        assert out.shallow_level == 1
        assert out.lits == (1, 2)

    def test_unit_conflict_asserts_without_resolution(self, eae_prefix):
        # A falsified unit clause is immediately asserting at level 0 — no
        # resolution needed even though a reason is available.
        trail = FakeTrail(
            eae_prefix,
            {1: (True, 1, 0, None), 2: (False, 1, 1, Clause((2, -1)))},
        )
        out = analyze_conflict((2,), trail.view())
        assert isinstance(out, Backjump)
        assert out.lits == (2,)
        assert out.level == 0

    def test_resolution_with_reason(self, eae_prefix):
        # Conflict (2, 4) with both existentials at level 2: not asserting.
        # x4 was propagated false by (¬4 ∨ ¬1); resolving yields (2, ¬1),
        # which is unit at level 1 and asserts x2.
        reason4 = Clause((-4, -1))
        trail = FakeTrail(
            eae_prefix,
            {
                1: (True, 1, 0, None),
                2: (False, 2, 1, None),
                4: (False, 2, 2, reason4),
            },
        )
        out = analyze_conflict((2, 4), trail.view())
        assert isinstance(out, Backjump)
        assert set(out.lits) == {2, -1}
        assert out.assert_lit == 2
        assert out.level == 1

    def test_universal_reduction_inside_analysis(self, eae_prefix):
        # Clause (¬1, 3): y3 has no existential inside its scope in the
        # clause, so it is reduced away, leaving the unit (¬1).
        trail = FakeTrail(
            eae_prefix,
            {1: (True, 1, 0, None), 3: (False, 2, 1, None)},
        )
        out = analyze_conflict((-1, 3), trail.view())
        assert isinstance(out, Backjump)
        assert out.lits == (-1,)

    def test_fallback_when_only_pure_reasons(self, eae_prefix):
        # Two existentials false at the same level, neither resolvable
        # (decision/pure reasons): no asserting clause exists.
        trail = FakeTrail(
            eae_prefix,
            {1: (False, 1, 0, None), 2: (False, 1, 1, None)},
        )
        out = analyze_conflict((1, 2), trail.view())
        assert isinstance(out, Fallback)

    def test_blocking_universal_forces_resolution_or_fallback(self, eae_prefix):
        # Clause (4, 3) with y3 unassigned and y3 ≺ x4: cannot assert.
        trail = FakeTrail(eae_prefix, {4: (False, 1, 0, None)})
        out = analyze_conflict((4, 3), trail.view())
        assert isinstance(out, Fallback)


class TestCubeAnalysis:
    def test_terminal_on_all_existential(self, eae_prefix):
        trail = FakeTrail(eae_prefix, {1: (True, 1, 0, None)})
        out = analyze_solution((1,), trail.view())
        assert isinstance(out, Terminal)

    def test_terminal_at_level_zero(self, eae_prefix):
        trail = FakeTrail(eae_prefix, {3: (True, 0, 0, None)})
        out = analyze_solution((3,), trail.view())
        assert isinstance(out, Terminal)

    def test_asserting_cube_backjump(self, eae_prefix):
        # Cube (1, 3): x1 true at level 1 (and x1 ≺ y3, so it pins the
        # level), y3 true at level 2 — unit at level 1, flipping y3.
        trail = FakeTrail(
            eae_prefix,
            {1: (True, 1, 0, None), 3: (True, 2, 1, None)},
        )
        out = analyze_solution((1, 3), trail.view())
        assert isinstance(out, Backjump)
        assert out.assert_lit == 3  # the engine assigns ¬3
        assert out.level == 1

    def test_existential_reduction_inside_analysis(self, eae_prefix):
        # Cube (3, 4): x4 is after y3, reduced away; remaining (3) asserts.
        trail = FakeTrail(
            eae_prefix,
            {3: (True, 1, 0, None), 4: (True, 2, 1, None)},
        )
        out = analyze_solution((3, 4), trail.view())
        assert isinstance(out, Backjump)
        assert out.lits == (3,)
        assert out.level == 0

    def test_cube_resolution_with_reason(self, eae_prefix):
        # ¬y3 was propagated by the cube (1, 3): resolving the satisfied
        # cube (1, -3) with it on y3 merges to (1).
        reason = Cube((1, 3))
        trail = FakeTrail(
            eae_prefix,
            {
                1: (True, 1, 0, None),
                3: (False, 1, 1, reason),
            },
        )
        out = analyze_solution((1, -3), trail.view())
        # (1) has no universal literal: the whole QBF is true.
        assert isinstance(out, Terminal)


class TestBuildModelCube:
    def test_covers_every_clause(self, eae_prefix):
        clauses = [Clause((1, 4)), Clause((2, -3)), Clause((1, 5))]
        trail = FakeTrail(
            eae_prefix,
            {
                1: (True, 1, 0, None),
                2: (True, 1, 1, None),
                3: (False, 2, 2, None),
                4: (False, 2, 3, None),
                5: (True, 3, 4, None),
            },
        )
        cube = build_model_cube(clauses, trail.view(), [])
        for clause in clauses:
            assert any(l in cube for l in clause.lits)
        # Only true literals are selected.
        view = trail.view()
        assert all(view.value(l) is True for l in cube)

    def test_unsatisfied_clause_rejected(self, eae_prefix):
        clauses = [Clause((1,))]
        trail = FakeTrail(eae_prefix, {1: (False, 1, 0, None)})
        with pytest.raises(ValueError):
            build_model_cube(clauses, trail.view(), [])

    def test_prefers_already_chosen_literals(self, eae_prefix):
        # Both clauses satisfied by literal 1: the cube stays a singleton.
        clauses = [Clause((1, 4)), Clause((1, 5))]
        trail = FakeTrail(
            eae_prefix,
            {1: (True, 1, 0, None), 4: (True, 2, 1, None), 5: (True, 2, 2, None)},
        )
        cube = build_model_cube(clauses, trail.view(), [])
        assert cube == (1,)
