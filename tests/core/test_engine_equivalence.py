"""Property tests: the propagation backends are decision-for-decision equal.

The layered engine's contract (see :mod:`repro.core.engine.backend`) says a
backend choice may change how fast events are found, never *which* events:
on the same formula and config, every backend must produce the same decision
sequence, the same trail at each decision, the same outcome and the same
search statistics (modulo the explicitly backend-dependent visit/swap
counters). These tests check exactly that, on random non-prenex QBFs and
their prenexings — i.e. QUBE(PO) and QUBE(TO) alike — with the pure-literal
rule both on and off, and additionally that the watched and native engines'
runs certify (their clause/term resolution derivations check out
independently).

The native (compiled) backend joins the parametrization whenever the
extension is importable; on builds without it those cases skip loudly
rather than pass vacuously.
"""

import dataclasses
import random

import pytest

from repro.core.engine.native import native_available
from repro.core.result import Outcome
from repro.core.solver import QdpllSolver, SolverConfig
from repro.generators.random_qbf import random_qbf
from repro.prenexing import prenex

#: stats that are allowed — expected, even — to differ between backends.
BACKEND_DEPENDENT = (
    "clause_visits",
    "cube_visits",
    "watcher_swaps",
    "engine_fallback",
)

needs_native = pytest.mark.skipif(
    not native_available(), reason="compiled kernel (repro._native) not built"
)

#: every non-reference backend, each checked against the counters reference.
CHALLENGERS = [
    "watched",
    pytest.param("native", marks=needs_native),
]


def _traced_run(formula, config):
    """Solve and record (trail, decision-stack) snapshots at each decision."""
    solver = QdpllSolver(formula, config)
    snapshots = []
    inner = solver._decide

    def traced():
        ok = inner()
        snapshots.append((tuple(solver.trail.lits), tuple(solver.trail.decision)))
        return ok

    solver._decide = traced
    result = solver.solve()
    return result, snapshots


def _comparable_stats(stats):
    out = dataclasses.asdict(stats)
    for key in BACKEND_DEPENDENT:
        out.pop(key)
    return out


@pytest.mark.parametrize("challenger", CHALLENGERS)
@pytest.mark.parametrize("pure", [True, False], ids=["pure-on", "pure-off"])
@pytest.mark.parametrize("seed", range(30))
def test_backends_identical_decision_sequences(seed, pure, challenger):
    rng = random.Random(seed)
    phi = random_qbf(
        rng,
        prenex=False,
        depth=2,
        branching=2,
        block_size=rng.randint(1, 2),
        clauses_per_scope=2,
        clause_len=3,
    )
    for variant in (phi, prenex(phi)):  # QUBE(PO) and QUBE(TO)
        runs = {}
        for engine in ("counters", challenger):
            config = SolverConfig(engine=engine, pure_literals=pure, max_decisions=3000)
            runs[engine] = _traced_run(variant, config)
        ref_result, ref_snapshots = runs["counters"]
        new_result, new_snapshots = runs[challenger]
        assert new_result.outcome is ref_result.outcome
        assert new_snapshots == ref_snapshots, (
            "trail diverged at decision %d"
            % next(
                i
                for i, (a, b) in enumerate(zip(ref_snapshots, new_snapshots))
                if a != b
            )
        )
        assert _comparable_stats(new_result.stats) == _comparable_stats(ref_result.stats)


@pytest.mark.parametrize("challenger", CHALLENGERS)
@pytest.mark.parametrize("seed", range(8))
def test_non_reference_runs_certify(seed, challenger):
    """The watched and native engines' certified runs verify end to end.

    Certification forces the pure-literal rule off, so this also pins the
    watched backend's fully lazy fast path (no occurrence walks at
    assign/backtrack at all) — and the native kernel's compiled propagation
    and reduction fast paths — against the independent proof checker.
    """
    from repro.certify import (
        MemorySink,
        ProofLogger,
        certifying_config,
        check_certificate,
    )

    rng = random.Random(1000 + seed)
    phi = random_qbf(
        rng,
        prenex=False,
        depth=2,
        branching=2,
        block_size=rng.randint(1, 2),
        clauses_per_scope=2,
        clause_len=3,
    )
    outcomes = {}
    for engine in ("counters", challenger):
        config = certifying_config(SolverConfig(engine=engine, max_decisions=3000))
        sink = MemorySink()
        result = QdpllSolver(phi, config, proof=ProofLogger(sink)).solve()
        assert result.outcome is not Outcome.UNKNOWN
        report = check_certificate(phi, sink)
        assert report.status == "verified", report
        outcomes[engine] = result.outcome
    assert outcomes["counters"] is outcomes[challenger]


def test_stats_volatility_is_limited_to_visit_counters():
    """The watched backend earns its keep: on a real instance it must do
    *fewer* constraint-body scans than the reference, not just the same
    events — and the reference must never report a watcher swap."""
    from repro.generators.ncf import NcfParams, generate_ncf

    phi = generate_ncf(NcfParams(dep=6, var=4, cls=12, lpc=5, seed=1))
    runs = {
        engine: QdpllSolver(
            phi, SolverConfig(engine=engine, max_decisions=2000)
        ).solve()
        for engine in ("counters", "watched")
    }
    assert runs["counters"].stats.watcher_swaps == 0
    assert _comparable_stats(runs["counters"].stats) == _comparable_stats(
        runs["watched"].stats
    )
    total_visits = lambda s: s.clause_visits + s.cube_visits
    assert total_visits(runs["watched"].stats) <= total_visits(runs["counters"].stats)
    assert runs["watched"].stats.watcher_swaps > 0
