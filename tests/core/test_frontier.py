"""The incremental branching frontier, paranoid trail guard, and hoisted
pickers: equivalence tests for the flat-array kernels.

The frontier contract: ``Trail.available_vars()`` (per-block counters
maintained under push/unassign) must return exactly what the recursive
quantifier-tree walk ``SearchEngine._available_vars()`` returns — same
variables, same (DFS) order — in *every* reachable search state, for both
propagation backends, on prenex (TO) and tree (PO) prefixes alike.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import SearchEngine
from repro.core.engine.config import SolverConfig
from repro.core.engine.trail import Trail
from repro.core.heuristics import ScoreKeeper, make_picker, pick_literal
from repro.core.literals import EXISTS
from repro.core.prefix import Prefix
from repro.generators.random_qbf import random_qbf
from repro.prenexing.strategies import prenex


def _reference_available(prefix, value):
    """The pre-kernel recursive tree walk, reimplemented independently."""
    out = []

    def visit(block, pending_lt, pending_eq):
        pending_here = False
        for v in block.variables:
            if value[v] == 0:
                pending_here = True
                if not pending_lt:
                    out.append(v)
        for child in block.children:
            if child.level == block.level:
                visit(child, pending_lt, pending_eq or pending_here)
            else:
                visit(child, pending_lt or pending_eq or pending_here, False)

    visit(prefix.root, False, False)
    return out


# -- direct push/unassign driver on a bare Trail ------------------------------


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_frontier_matches_tree_walk_under_random_stack_ops(seed):
    rng = random.Random(seed)
    phi = random_qbf(
        rng,
        prenex=False,
        depth=rng.randint(1, 3),
        branching=rng.randint(1, 2),
        block_size=rng.randint(1, 3),
        clauses_per_scope=1,
        clause_len=2,
    )
    prefix = phi.prefix
    nv = max(prefix.variables, default=0)
    trail = Trail(nv, prefix=prefix)
    assigned = []  # stack of literals, mirroring real trail discipline
    for _ in range(rng.randint(5, 60)):
        unassigned = [v for v in prefix.variables if trail.value[v] == 0]
        if assigned and (not unassigned or rng.random() < 0.4):
            # pop a random-length suffix, exactly like a backtrack
            keep = rng.randrange(len(assigned))
            for lit in reversed(assigned[keep:]):
                trail.unassign(lit)
            del assigned[keep:]
        elif unassigned:
            v = rng.choice(unassigned)
            lit = v if rng.random() < 0.5 else -v
            trail.push(lit, None)
            assigned.append(lit)
        assert trail.available_vars() == _reference_available(prefix, trail.value)


# -- in-search equivalence: every decision point of a real solve --------------


def _solve_checking_frontier(phi, engine):
    config = SolverConfig(max_decisions=300, engine=engine)
    solver = SearchEngine(phi, config)
    checks = 0
    inner = solver._decide

    def checked():
        assert solver.trail.available_vars() == solver._available_vars()
        return inner()

    solver._decide = checked
    solver.solve()
    # final state (post-backtracks) must agree too
    assert solver.trail.available_vars() == solver._available_vars()
    return checks


@pytest.mark.parametrize("engine", ["counters", "watched"])
@pytest.mark.parametrize("pipeline", ["po", "to"])
@pytest.mark.parametrize("seed", range(12))
def test_frontier_matches_walk_at_every_decision(seed, pipeline, engine):
    rng = random.Random(seed)
    phi = random_qbf(
        rng,
        prenex=False,
        depth=2,
        branching=2,
        block_size=rng.randint(1, 2),
        clauses_per_scope=2,
        clause_len=3,
    )
    if pipeline == "to":
        phi = prenex(phi)
    _solve_checking_frontier(phi, engine)


# -- the paranoid double-assignment guard -------------------------------------


def test_paranoid_push_still_raises_on_double_assignment():
    prefix = Prefix.linear([(EXISTS, (1, 2))])
    trail = Trail(2, prefix=prefix, paranoid=True)
    trail.push(1, None)
    with pytest.raises(AssertionError):
        trail.push(1, None)
    with pytest.raises(AssertionError):
        trail.push(-1, None)


def test_release_push_skips_the_guard():
    prefix = Prefix.linear([(EXISTS, (1, 2))])
    trail = Trail(2, prefix=prefix, paranoid=False)
    trail.push(1, None)
    assert trail.lit_value(1) is True
    assert trail.push == trail._push_fast


def test_paranoid_config_flag_reaches_the_trail(monkeypatch):
    phi = random_qbf(random.Random(0), prenex=False, depth=1, branching=1)
    engine = SearchEngine(phi, SolverConfig(paranoid=True))
    assert engine.trail.push == engine.trail._push_checked
    engine = SearchEngine(phi, SolverConfig())
    assert engine.trail.push == engine.trail._push_fast
    monkeypatch.setenv("REPRO_PARANOID", "1")
    assert SolverConfig().paranoid is True
    monkeypatch.setenv("REPRO_PARANOID", "0")
    assert SolverConfig().paranoid is False


def test_paranoid_run_is_decision_identical():
    rng = random.Random(7)
    phi = random_qbf(rng, prenex=False, depth=2, branching=2,
                     clauses_per_scope=2, clause_len=3)
    cfg = SolverConfig(max_decisions=500)
    plain = SearchEngine(phi, cfg).solve()
    cfg_p = SolverConfig(max_decisions=500, paranoid=True)
    guarded = SearchEngine(phi, cfg_p).solve()
    assert plain.outcome == guarded.outcome
    assert plain.stats == guarded.stats


# -- hoisted pickers: identical literals, all four policies -------------------


def _legacy_pick(policy, keeper, available):
    """The pre-hoist pick_literal, lambdas rebuilt per call (reference)."""
    if not available:
        return None
    if policy == "naive":
        return min(available)
    if policy == "counter":
        key = lambda v: (max(keeper.score[v], keeper.score[-v]), -v)
    elif policy == "subtree":
        key = lambda v: (max(keeper.effective(v), keeper.effective(-v)), -v)
    elif policy == "levelsub":
        prefix = keeper.prefix
        key = lambda v: (
            -prefix.level(v),
            max(keeper.effective(v), keeper.effective(-v)),
            -v,
        )
    var = max(available, key=key)
    return var if keeper.score[var] >= keeper.score[-var] else -var


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_all_policies_pick_identical_literals(seed):
    rng = random.Random(seed)
    phi = random_qbf(
        rng,
        prenex=False,
        depth=rng.randint(1, 3),
        branching=rng.randint(1, 2),
        block_size=rng.randint(1, 3),
        clauses_per_scope=1,
        clause_len=2,
    )
    prefix = phi.prefix
    keeper = ScoreKeeper(prefix)
    # random score state, bumped through the public API
    for _ in range(rng.randint(0, 30)):
        keeper.on_learned(
            [v if rng.random() < 0.5 else -v
             for v in rng.sample(prefix.variables, rng.randint(1, len(prefix.variables)))]
        )
    pool = list(prefix.variables)
    rng.shuffle(pool)
    available = pool[: rng.randint(0, len(pool))]
    for policy in ("levelsub", "subtree", "counter", "naive"):
        expected = _legacy_pick(policy, keeper, available)
        assert make_picker(policy, keeper)(available) == expected
        assert pick_literal(policy, keeper, available) == expected
