"""Hypothesis property tests on the kernel's core invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.constraints import (
    existential_reduce,
    resolve,
    universal_reduce,
)
from repro.core.expansion import evaluate
from repro.core.formula import QBF
from repro.core.literals import EXISTS, FORALL
from repro.core.prefix import Prefix
from repro.core.solver import SolverConfig, solve
from repro.generators.random_qbf import random_prenex_qbf, random_qbf
from repro.io import qtree
from repro.prenexing.miniscoping import miniscope
from repro.prenexing.strategies import STRATEGIES, prenex

# A compact strategy for random prefixes: alternating blocks over 1..n.
prefix_strategy = st.integers(min_value=1, max_value=4).flatmap(
    lambda blocks: st.tuples(
        st.just(blocks),
        st.integers(min_value=1, max_value=3),
        st.booleans(),
    )
)


def _make_prefix(spec):
    blocks, size, start_exists = spec
    quant = EXISTS if start_exists else FORALL
    out = []
    v = 1
    for _ in range(blocks):
        out.append((quant, tuple(range(v, v + size))))
        v += size
        quant = quant.dual
    return Prefix.linear(out)


def _random_lits(rng, prefix, max_len):
    pool = list(prefix.variables)
    rng.shuffle(pool)
    chosen = pool[: rng.randint(1, min(max_len, len(pool)))]
    return tuple(v if rng.random() < 0.5 else -v for v in chosen)


@given(prefix_strategy, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_universal_reduce_is_idempotent_and_shrinking(spec, seed):
    prefix = _make_prefix(spec)
    rng = random.Random(seed)
    lits = _random_lits(rng, prefix, 6)
    once = universal_reduce(lits, prefix)
    assert set(once) <= set(lits)
    assert universal_reduce(once, prefix) == once
    # No existential literal is ever deleted.
    for l in lits:
        if prefix.is_existential(l):
            assert l in once


@given(prefix_strategy, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_existential_reduce_is_dual(spec, seed):
    prefix = _make_prefix(spec)
    rng = random.Random(seed)
    lits = _random_lits(rng, prefix, 6)
    once = existential_reduce(lits, prefix)
    assert set(once) <= set(lits)
    assert existential_reduce(once, prefix) == once
    for l in lits:
        if prefix.is_universal(l):
            assert l in once


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_resolution_never_contains_pivot(seed):
    rng = random.Random(seed)
    n = rng.randint(2, 8)
    pivot = rng.randint(1, n)
    a = tuple(
        set(
            [pivot]
            + [rng.choice([v, -v]) for v in rng.sample(range(1, n + 1), rng.randint(0, n - 1))]
        )
    )
    b = tuple(
        set(
            [-pivot]
            + [rng.choice([v, -v]) for v in rng.sample(range(1, n + 1), rng.randint(0, n - 1))]
        )
    )
    try:
        from repro.core.constraints import Clause

        Clause(a), Clause(b)
    except ValueError:
        return  # a or b had an internal tautology; not a valid input
    resolvent = resolve(a, b, pivot)
    if resolvent is not None:
        assert pivot not in resolvent and -pivot not in resolvent
        assert set(resolvent) <= (set(a) | set(b)) - {pivot, -pivot}


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_solver_agrees_with_oracle(seed):
    rng = random.Random(seed)
    phi = random_qbf(
        rng,
        prenex=bool(seed % 2),
        **(
            dict(num_blocks=rng.randint(2, 3), block_size=rng.randint(1, 2),
                 num_clauses=rng.randint(3, 10), clause_len=3)
            if seed % 2
            else dict(depth=2, branching=2, block_size=rng.randint(1, 2),
                      clauses_per_scope=2, clause_len=3)
        ),
    )
    expected = evaluate(phi, max_vars=None)
    assert solve(phi).value == expected
    assert solve(phi, SolverConfig(learn_clauses=False, learn_cubes=False)).value == expected


@given(st.integers(min_value=0, max_value=10_000), st.sampled_from(STRATEGIES))
@settings(max_examples=30, deadline=None)
def test_prenexing_preserves_value_and_extends_order(seed, strategy):
    rng = random.Random(seed)
    phi = random_qbf(rng, prenex=False, depth=2, branching=2, block_size=1,
                     clauses_per_scope=2, clause_len=3)
    flat = prenex(phi, strategy)
    assert flat.is_prenex
    for a in phi.prefix.variables:
        for b in phi.prefix.variables:
            if a != b and phi.prefix.prec(a, b):
                assert flat.prefix.prec(a, b)
    assert solve(flat).value == solve(phi).value


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_miniscope_preserves_value(seed):
    rng = random.Random(seed)
    phi = random_prenex_qbf(rng, num_blocks=rng.randint(2, 3), block_size=2,
                            num_clauses=rng.randint(3, 10), clause_len=3)
    tree = miniscope(phi)
    assert solve(tree).value == solve(phi).value


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_qtree_roundtrip(seed):
    rng = random.Random(seed)
    phi = random_qbf(rng)
    assert qtree.loads(qtree.dumps(phi)) == phi


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_certified_to_po_and_simple_agree(seed):
    """TO, PO and the Figure-1 reference solver agree on random non-prenex
    QBFs, and every determined engine outcome carries an independently
    checked resolution certificate — the TO proof validated against the
    original tree formula."""
    from repro.certify import (
        MemorySink,
        ProofLogger,
        certifying_config,
        check_certificate,
    )
    from repro.core.simple import q_dll
    from repro.core.solver import QdpllSolver

    rng = random.Random(seed)
    phi = random_qbf(rng, prenex=False, depth=2, branching=2,
                     block_size=rng.randint(1, 2), clauses_per_scope=2, clause_len=3)
    reference, _, _ = q_dll(phi)

    config = certifying_config()
    for variant in (phi, prenex(phi)):  # PO solves the tree, TO the prenexing
        sink = MemorySink()
        result = QdpllSolver(variant, config, proof=ProofLogger(sink)).solve()
        assert result.value == reference
        report = check_certificate(phi, sink)
        assert report.status == "verified", report
        assert report.outcome == ("true" if reference else "false")


@given(prefix_strategy)
@settings(max_examples=40, deadline=None)
def test_prec_is_a_strict_partial_order(spec):
    prefix = _make_prefix(spec)
    vs = prefix.variables
    for a in vs:
        assert not prefix.prec(a, a)
        for b in vs:
            if prefix.prec(a, b):
                assert not prefix.prec(b, a)
            for c in vs:
                if prefix.prec(a, b) and prefix.prec(b, c):
                    assert prefix.prec(a, c)
