"""Targeted behavioural tests of the QDPLL engine internals."""

import pytest

from repro.core.formula import QBF, paper_example
from repro.core.literals import EXISTS, FORALL
from repro.core.result import Outcome
from repro.core.solver import QdpllSolver, SolverConfig, solve


class TestInstall:
    def test_duplicate_clauses_deduplicated(self):
        phi = QBF.prenex([(EXISTS, [1, 2])], [(1, 2), (1, 2), (2, 1)])
        solver = QdpllSolver(phi)
        assert len(solver._orig_clauses) == 1

    def test_install_reduces_universals(self):
        # (x ∨ y) with y universal *after* x reduces to (x) at load time.
        phi = QBF.prenex([(EXISTS, [1]), (FORALL, [2])], [(1, 2)])
        solver = QdpllSolver(phi)
        assert solver._orig_clauses[0].lits == (1,)

    def test_install_detects_trivially_false(self):
        phi = QBF.prenex([(FORALL, [1]), (EXISTS, [2])], [(1,), (2,)])
        assert solve(phi).outcome is Outcome.FALSE

    def test_unused_prefix_variable_is_harmless(self):
        phi = QBF.prenex([(EXISTS, [1, 9]), (FORALL, [2])], [(1, 2), (1, -2)])
        assert solve(phi).outcome is Outcome.TRUE

    def test_install_sanitizes_raw_clauses(self):
        # The engine accepts duck-typed formulas whose clauses are raw
        # literal tuples (canonical Clause would reject these at
        # construction): duplicate literals are dropped and a same-clause
        # tautology is skipped outright at install time.
        from types import SimpleNamespace

        clean = QBF.prenex([(EXISTS, [1, 2])], [(1, 2)])
        raw = SimpleNamespace(
            prefix=clean.prefix,
            clauses=[
                SimpleNamespace(lits=(1, -1, 2)),  # tautological: skipped
                SimpleNamespace(lits=(1, 1, 2)),  # duplicate: dedup to (1, 2)
                SimpleNamespace(lits=(2, 1)),  # canonicalizes to the same
            ],
        )
        for engine in ("counters", "watched"):
            solver = QdpllSolver(raw, SolverConfig(engine=engine))
            assert [rec.lits for rec in solver._orig_clauses] == [(1, 2)]
            assert solver.solve().outcome is Outcome.TRUE


class TestPropagation:
    def test_unit_chain_at_level_zero(self):
        phi = QBF.prenex(
            [(EXISTS, [1, 2, 3])],
            [(1,), (-1, 2), (-2, 3)],
        )
        result = solve(phi)
        assert result.outcome is Outcome.TRUE
        assert result.stats.decisions == 0

    def test_unit_blocked_by_scoped_universal(self):
        # {y, x} with x in y's scope is NOT unit; the formula is false
        # because the universal player sets y false and then x alone
        # cannot satisfy both clauses.
        phi = QBF.prenex([(FORALL, [1]), (EXISTS, [2])], [(1, 2), (1, -2)])
        assert solve(phi).outcome is Outcome.FALSE

    def test_unit_fires_across_tree_branches(self):
        # {y1-branch...} clause with a universal from the *other* branch is
        # unit under the tree (the universal does not scope over it).
        phi = QBF.tree(
            [
                (
                    EXISTS,
                    (1,),
                    (
                        (FORALL, (2,), ((EXISTS, (3,), ()),)),
                        (FORALL, (4,), ((EXISTS, (5,), ()),)),
                    ),
                )
            ],
            [(3, 2), (-3, 2), (5, 4), (-5, 4)],
        )
        # Each branch forces its existential both ways when its universal is
        # false: the whole thing is false.
        assert solve(phi).outcome is Outcome.FALSE

    def test_pure_literal_statistics(self):
        phi = QBF.prenex([(EXISTS, [1, 2])], [(1, 2)])
        solver = QdpllSolver(phi)
        result = solver.solve()
        assert result.outcome is Outcome.TRUE
        assert solver.stats.pure_literals >= 1
        assert solver.stats.decisions == 0

    def test_universal_pure_literal_is_adversarial(self):
        # y occurs only positively: the universal player assigns y *true*
        # never helps falsify; the rule assigns the absent polarity.
        phi = QBF.prenex([(FORALL, [1]), (EXISTS, [2])], [(1, 2), (1, -2)])
        result = solve(phi)
        assert result.outcome is Outcome.FALSE


class TestLearningMachinery:
    def test_learned_constraints_recorded(self):
        phi = paper_example()
        solver = QdpllSolver(phi)
        result = solver.solve()
        assert result.outcome is Outcome.FALSE
        # Any learned clause must mention only prefix variables.
        for lits in solver._learned_clauses:
            for lit in lits:
                assert abs(lit) in phi.prefix

    def test_backjump_modes_agree_on_value(self):
        phi = paper_example()
        a = solve(phi, SolverConfig(backjump="assert"))
        b = solve(phi, SolverConfig(backjump="shallow"))
        assert a.outcome == b.outcome

    def test_bad_backjump_mode_rejected(self):
        with pytest.raises(ValueError):
            SolverConfig(backjump="diagonal")

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            SolverConfig(policy="wishful")


class TestBudgets:
    def test_time_budget(self):
        phi = paper_example()
        result = solve(phi, SolverConfig(max_seconds=0.0))
        # Either it finishes instantly during setup or reports UNKNOWN.
        assert result.outcome in (Outcome.FALSE, Outcome.UNKNOWN)

    def test_decision_budget_exact(self):
        phi = paper_example()
        result = solve(phi, SolverConfig(max_decisions=1, pure_literals=False,
                                         learn_clauses=False, learn_cubes=False))
        assert result.outcome is Outcome.UNKNOWN
        assert result.stats.decisions <= 2


class TestPureLiteralBacktracking:
    """Regression tests: purity must survive backjumps (Section III).

    Pre-fix, ``_backtrack`` never re-seeded ``_pure_candidates`` and
    ``_apply_pure_literals`` dropped candidates that happened to be assigned
    when examined, so a variable that is pure in the restored state was never
    reconsidered and the monotone-literal rule silently degraded as search
    deepened.
    """

    def _decide(self, solver, lit):
        solver._level_start.append(len(solver._trail))
        solver._decision.append((lit, False))
        solver._assign(lit, None)

    def test_backtrack_reseeds_pure_candidates(self):
        # ∃{1,2,3} : (1 ∨ 2) ∧ (¬2 ∨ 3). Variable 1 never occurs negated,
        # so it is pure in *every* state where it is unassigned.
        phi = QBF.prenex([(EXISTS, [1, 2, 3])], [(1, 2), (-2, 3)])
        solver = QdpllSolver(phi)
        # Simulate mid-search: the install-time candidates have been consumed.
        solver._pure_candidates.clear()
        # Decision level 1: assign 2. Satisfying (1 ∨ 2) re-enqueues vars 1
        # and 2 as purity candidates via _on_clause_sat.
        self._decide(solver, 2)
        assert {1, 2} <= solver._pure_candidates
        # The pure rule fires for the unassigned var 1 and examines var 2
        # while it is assigned (the pre-fix code dropped it permanently).
        assert solver._apply_pure_literals()
        assert solver._lit_value(1) is True
        # Backjump to level 0. In the restored state var 1 is unassigned and
        # still pure, exactly as a from-scratch solver would see it.
        solver._backtrack(0)
        assert all(solver._value[v] == 0 for v in (1, 2, 3))
        assert {1, 2} <= solver._pure_candidates, (
            "backtrack must re-seed purity candidates for unassigned vars"
        )
        # And the rule must actually re-fire, matching the fresh state.
        fresh = QdpllSolver(phi)
        assert fresh._apply_pure_literals()
        assert solver._apply_pure_literals()
        assert solver._lit_value(1) is True and fresh._lit_value(1) is True

    def test_fix_changes_search_but_not_outcomes(self):
        # Differential regression against a replica of the pre-fix
        # ``backtrack`` (no candidate re-seeding). On real NCF instances the
        # re-seeded engine must (a) always agree on the outcome and (b)
        # actually diverge in its decision/pure-literal counts — if the
        # re-seed is ever lost again, the two engines become identical and
        # this test fails. The replica is a propagation backend pinned via
        # the ``backend_override`` test hook.
        from repro.core.engine import CounterBackend
        from repro.core.literals import var_of
        from repro.generators.ncf import NcfParams, generate_ncf

        class PreFixBackend(CounterBackend):
            def backtrack(self, to_level):
                trail = self.trail
                target = trail.level_start[to_level + 1]
                for lit in reversed(trail.lits[target:]):
                    # unassign via the trail API (which keeps the flat value
                    # array and branching frontier coherent) but replicate
                    # the pre-fix bug: no pure-candidate re-seeding.
                    trail.unassign(lit)
                    for rec in self.clause_occ[lit]:
                        rec.n_true -= 1
                        if rec.n_true == 0:
                            self._on_clause_unsat(rec)
                    for rec in self.clause_occ[-lit]:
                        rec.n_false -= 1
                    for rec in self.cube_occ[-lit]:
                        rec.n_false -= 1
                    for rec in self.cube_occ[lit]:
                        rec.n_true -= 1
                trail.shrink(to_level, target)

        class PreFixSolver(QdpllSolver):
            backend_override = PreFixBackend

        diverged = False
        for seed in (1, 3):
            phi = generate_ncf(NcfParams(dep=6, var=4, cls=12, lpc=5, seed=seed))
            cfg = SolverConfig(max_decisions=2000)
            fixed = QdpllSolver(phi, cfg).solve()
            broken = PreFixSolver(phi, cfg).solve()
            assert fixed.outcome is broken.outcome, seed
            diverged = diverged or (
                fixed.stats.pure_literals != broken.stats.pure_literals
                or fixed.stats.decisions != broken.stats.decisions
            )
        assert diverged, "backtrack re-seeding had no observable effect"
