"""Targeted behavioural tests of the QDPLL engine internals."""

import pytest

from repro.core.formula import QBF, paper_example
from repro.core.literals import EXISTS, FORALL
from repro.core.result import Outcome
from repro.core.solver import QdpllSolver, SolverConfig, solve


class TestInstall:
    def test_duplicate_clauses_deduplicated(self):
        phi = QBF.prenex([(EXISTS, [1, 2])], [(1, 2), (1, 2), (2, 1)])
        solver = QdpllSolver(phi)
        assert len(solver._orig_clauses) == 1

    def test_install_reduces_universals(self):
        # (x ∨ y) with y universal *after* x reduces to (x) at load time.
        phi = QBF.prenex([(EXISTS, [1]), (FORALL, [2])], [(1, 2)])
        solver = QdpllSolver(phi)
        assert solver._orig_clauses[0].lits == (1,)

    def test_install_detects_trivially_false(self):
        phi = QBF.prenex([(FORALL, [1]), (EXISTS, [2])], [(1,), (2,)])
        assert solve(phi).outcome is Outcome.FALSE

    def test_unused_prefix_variable_is_harmless(self):
        phi = QBF.prenex([(EXISTS, [1, 9]), (FORALL, [2])], [(1, 2), (1, -2)])
        assert solve(phi).outcome is Outcome.TRUE


class TestPropagation:
    def test_unit_chain_at_level_zero(self):
        phi = QBF.prenex(
            [(EXISTS, [1, 2, 3])],
            [(1,), (-1, 2), (-2, 3)],
        )
        result = solve(phi)
        assert result.outcome is Outcome.TRUE
        assert result.stats.decisions == 0

    def test_unit_blocked_by_scoped_universal(self):
        # {y, x} with x in y's scope is NOT unit; the formula is false
        # because the universal player sets y false and then x alone
        # cannot satisfy both clauses.
        phi = QBF.prenex([(FORALL, [1]), (EXISTS, [2])], [(1, 2), (1, -2)])
        assert solve(phi).outcome is Outcome.FALSE

    def test_unit_fires_across_tree_branches(self):
        # {y1-branch...} clause with a universal from the *other* branch is
        # unit under the tree (the universal does not scope over it).
        phi = QBF.tree(
            [
                (
                    EXISTS,
                    (1,),
                    (
                        (FORALL, (2,), ((EXISTS, (3,), ()),)),
                        (FORALL, (4,), ((EXISTS, (5,), ()),)),
                    ),
                )
            ],
            [(3, 2), (-3, 2), (5, 4), (-5, 4)],
        )
        # Each branch forces its existential both ways when its universal is
        # false: the whole thing is false.
        assert solve(phi).outcome is Outcome.FALSE

    def test_pure_literal_statistics(self):
        phi = QBF.prenex([(EXISTS, [1, 2])], [(1, 2)])
        solver = QdpllSolver(phi)
        result = solver.solve()
        assert result.outcome is Outcome.TRUE
        assert solver.stats.pure_literals >= 1
        assert solver.stats.decisions == 0

    def test_universal_pure_literal_is_adversarial(self):
        # y occurs only positively: the universal player assigns y *true*
        # never helps falsify; the rule assigns the absent polarity.
        phi = QBF.prenex([(FORALL, [1]), (EXISTS, [2])], [(1, 2), (1, -2)])
        result = solve(phi)
        assert result.outcome is Outcome.FALSE


class TestLearningMachinery:
    def test_learned_constraints_recorded(self):
        phi = paper_example()
        solver = QdpllSolver(phi)
        result = solver.solve()
        assert result.outcome is Outcome.FALSE
        # Any learned clause must mention only prefix variables.
        for lits in solver._learned_clauses:
            for lit in lits:
                assert abs(lit) in phi.prefix

    def test_backjump_modes_agree_on_value(self):
        phi = paper_example()
        a = solve(phi, SolverConfig(backjump="assert"))
        b = solve(phi, SolverConfig(backjump="shallow"))
        assert a.outcome == b.outcome

    def test_bad_backjump_mode_rejected(self):
        with pytest.raises(ValueError):
            SolverConfig(backjump="diagonal")

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            SolverConfig(policy="wishful")


class TestBudgets:
    def test_time_budget(self):
        phi = paper_example()
        result = solve(phi, SolverConfig(max_seconds=0.0))
        # Either it finishes instantly during setup or reports UNKNOWN.
        assert result.outcome in (Outcome.FALSE, Outcome.UNKNOWN)

    def test_decision_budget_exact(self):
        phi = paper_example()
        result = solve(phi, SolverConfig(max_decisions=1, pure_literals=False,
                                         learn_clauses=False, learn_cubes=False))
        assert result.outcome is Outcome.UNKNOWN
        assert result.stats.decisions <= 2
