"""Native-kernel specifics: fallback policy, strict mode, paranoid replay.

Decision identity between the native backend and the reference is covered
by the three-way parametrization in ``test_engine_equivalence.py``; this
module pins everything *around* the kernel — what happens when the compiled
extension is missing (loud fallback or structured error, never a silent
engine change), and that the paranoid-mode replay path (which routes every
kernel assignment back through ``Trail.push`` and its invariant guards)
still matches the reference decision for decision.
"""

import random
import warnings
from unittest import mock

import pytest

from repro.core.engine import native as native_mod
from repro.core.engine.native import (
    NativeBackend,
    NativeFallbackWarning,
    NativeUnavailableError,
    kernel_version,
    native_available,
    native_import_error,
)
from repro.core.engine.search import resolve_backend
from repro.core.engine.watched import WatchedBackend
from repro.core.formula import paper_example
from repro.core.result import SolverStats
from repro.core.solver import QdpllSolver, SolverConfig, solve
from repro.generators.random_qbf import random_qbf

needs_native = pytest.mark.skipif(
    not native_available(), reason="compiled kernel (repro._native) not built"
)


def _without_kernel():
    """Context: the extension looks unimportable, whatever the build did."""
    return mock.patch.multiple(
        native_mod, _native=None, _IMPORT_ERROR="simulated: no compiled kernel"
    )


class TestFallback:
    def test_resolves_to_watched_with_warning_and_stats_notice(self):
        stats = SolverStats()
        config = SolverConfig(engine="native")
        with _without_kernel():
            with pytest.warns(NativeFallbackWarning, match="falling back"):
                cls = resolve_backend(config, stats)
        assert cls is WatchedBackend
        assert stats.engine_fallback == "watched"

    def test_full_solve_lands_on_watched_and_records_it(self):
        with _without_kernel():
            with pytest.warns(NativeFallbackWarning):
                result = solve(paper_example(), SolverConfig(engine="native"))
        ref = solve(paper_example(), SolverConfig(engine="watched"))
        assert result.outcome is ref.outcome
        assert result.stats.engine_fallback == "watched"
        # the run really executed on the watched backend, not a half-built
        # native one: its lazy-scan signature (watcher swaps) must show.
        assert result.stats.watcher_swaps == ref.stats.watcher_swaps

    def test_never_set_when_engine_is_pure_python(self):
        result = solve(paper_example(), SolverConfig(engine="counters"))
        assert result.stats.engine_fallback == ""

    @needs_native
    def test_never_set_when_kernel_is_present(self):
        result = solve(paper_example(), SolverConfig(engine="native"))
        assert result.stats.engine_fallback == ""


class TestRequireNative:
    def test_config_flag_turns_fallback_into_error(self):
        config = SolverConfig(engine="native", require_native=True)
        with _without_kernel():
            with pytest.raises(NativeUnavailableError) as exc_info:
                resolve_backend(config, SolverStats())
        # the error is actionable: names the build command and the escapes.
        message = str(exc_info.value)
        assert "build_ext" in message
        assert "simulated: no compiled kernel" in message
        assert exc_info.value.reason == "simulated: no compiled kernel"

    def test_env_knob_sets_the_config_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_REQUIRE_NATIVE", "1")
        assert SolverConfig().require_native is True
        monkeypatch.setenv("REPRO_REQUIRE_NATIVE", "0")
        assert SolverConfig().require_native is False

    def test_direct_construction_without_kernel_raises(self):
        # backend_override paths skip resolve_backend(); the constructor
        # itself must refuse rather than half-initialise.
        class Pinned(QdpllSolver):
            backend_override = NativeBackend

        with _without_kernel():
            with pytest.raises(NativeUnavailableError):
                Pinned(paper_example(), SolverConfig())


class TestIntrospection:
    def test_availability_and_version_agree(self):
        if native_available():
            assert native_import_error() is None
            assert isinstance(kernel_version(), int)
        else:
            assert native_import_error()
            assert kernel_version() is None

    def test_simulated_absence_reports_reason(self):
        with _without_kernel():
            assert not native_available()
            assert native_import_error() == "simulated: no compiled kernel"
            assert kernel_version() is None


@needs_native
class TestParanoidReplay:
    """Paranoid mode swaps the fused in-kernel trail replay for the two-step
    path through ``Trail.push``; both must be invisible to the search."""

    @pytest.mark.parametrize("pure", [True, False], ids=["pure-on", "pure-off"])
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_reference_decisions(self, seed, pure):
        rng = random.Random(7000 + seed)
        phi = random_qbf(
            rng,
            prenex=False,
            depth=2,
            branching=2,
            block_size=rng.randint(1, 2),
            clauses_per_scope=2,
            clause_len=3,
        )
        ref = solve(
            phi,
            SolverConfig(engine="counters", pure_literals=pure, max_decisions=3000),
        )
        par = solve(
            phi,
            SolverConfig(
                engine="native",
                pure_literals=pure,
                paranoid=True,
                max_decisions=3000,
            ),
        )
        assert par.outcome is ref.outcome
        assert par.stats.decisions == ref.stats.decisions
        assert par.stats.conflicts == ref.stats.conflicts
        assert par.stats.solutions == ref.stats.solutions
        assert par.stats.propagations == ref.stats.propagations

    def test_flag_selects_the_replay_path(self):
        fast = QdpllSolver(paper_example(), SolverConfig(engine="native"))
        slow = QdpllSolver(
            paper_example(), SolverConfig(engine="native", paranoid=True)
        )
        assert fast.backend._fast_replay is True
        assert slow.backend._fast_replay is False


def test_fallback_warning_is_a_runtime_warning():
    # warning filters keyed on RuntimeWarning (the pytest default setup,
    # most CI configs) surface the fallback instead of swallowing it.
    assert issubclass(NativeFallbackWarning, RuntimeWarning)
    assert issubclass(NativeUnavailableError, RuntimeError)
