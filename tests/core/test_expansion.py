"""Tests for the expansion oracle (against hand-computed values)."""

import pytest

from repro.core.expansion import evaluate
from repro.core.formula import QBF, paper_example
from repro.core.literals import EXISTS, FORALL


def test_empty_matrix_is_true():
    assert evaluate(QBF.prenex([(EXISTS, [1])], []))


def test_empty_clause_is_false():
    assert not evaluate(QBF.prenex([(EXISTS, [1])], [()]))


def test_plain_sat_true():
    phi = QBF.prenex([(EXISTS, [1, 2])], [(1, 2), (-1, 2)])
    assert evaluate(phi)


def test_plain_sat_false():
    phi = QBF.prenex([(EXISTS, [1])], [(1,), (-1,)])
    assert not evaluate(phi)


def test_forall_needs_both_branches():
    # ∀y ∃x . (x ≡ y) is true; ∀y . y is false.
    phi = QBF.prenex([(FORALL, [1]), (EXISTS, [2])], [(1, 2), (-1, -2)])
    assert evaluate(phi)
    psi = QBF.prenex([(FORALL, [1]), (EXISTS, [2])], [(1, 2), (-1, -2), (2,)])
    assert not evaluate(psi)


def test_quantifier_order_matters():
    # ∃x ∀y (x ≡ y) is false, ∀y ∃x (x ≡ y) is true.
    matrix = [(1, 2), (-1, -2)]
    false_phi = QBF.prenex([(EXISTS, [1]), (FORALL, [2])], matrix)
    true_phi = QBF.prenex([(FORALL, [2]), (EXISTS, [1])], matrix)
    assert not evaluate(false_phi)
    assert evaluate(true_phi)


def test_paper_example_is_false():
    # Figure 2 closes every branch with an empty clause: equation (1) is
    # false (both x0 branches lead to a complete set of binary clauses).
    assert not evaluate(paper_example())


def test_tree_prefix_vs_prenexed_can_differ():
    # (∃x (x)) ∧ (∀y ∃z (y ∨ z) ∧ (¬y ∨ ¬z)) — true as a tree.
    phi = QBF.tree(
        [(EXISTS, (1,), ()), (FORALL, (2,), ((EXISTS, (3,), ()),))],
        [(1,), (2, 3), (-2, -3)],
    )
    assert evaluate(phi)


def test_guard_on_large_formulas():
    blocks = [(EXISTS, list(range(1, 60)))]
    phi = QBF.prenex(blocks, [(1,)])
    with pytest.raises(ValueError):
        evaluate(phi, max_vars=40)
