"""Unit tests for the branching heuristics (Section VI)."""

import pytest

from repro.core.formula import paper_example
from repro.core.heuristics import POLICIES, ScoreKeeper, pick_literal
from repro.core.literals import EXISTS, FORALL
from repro.core.prefix import Prefix


def keeper_for(prefix, clauses=()):
    keeper = ScoreKeeper(prefix)
    keeper.bump_initial(clauses)
    return keeper


class TestScoreKeeper:
    def test_initial_counts_existential(self):
        p = Prefix.linear([(EXISTS, [1, 2])])
        k = keeper_for(p, [(1, -2), (1, 2)])
        assert k.score[1] == 2.0
        assert k.score[-2] == 1.0 and k.score[2] == 1.0

    def test_universal_counts_complement(self):
        # Universal literal 1 occurring positively bumps score[-1]: the
        # universal player branches to falsify.
        p = Prefix.linear([(FORALL, [1]), (EXISTS, [2])])
        k = keeper_for(p, [(1, 2)])
        assert k.score[-1] == 1.0
        assert k.score[1] == 0.0

    def test_decay(self):
        p = Prefix.linear([(EXISTS, [1])])
        k = ScoreKeeper(p, decay_interval=1)
        k.bump_initial([(1,)])
        assert k.score[1] == 1.0
        k.on_learned((1,))
        # bump then immediate decay: (1 + 1) * 0.5
        assert k.score[1] == 1.0

    def test_subtree_scores_monotone_in_order(self):
        """If |l| ≺ |l'| then effective(l) > effective(l') with positive
        deeper scores — the Section VI guarantee."""
        phi = paper_example()
        k = keeper_for(phi.prefix, [c.lits for c in phi.clauses])
        for a in phi.prefix.variables:
            for b in phi.prefix.variables:
                if phi.prefix.prec(a, b):
                    assert max(k.effective(a), k.effective(-a)) >= max(
                        k.effective(b), k.effective(-b)
                    ), (a, b)

    def test_effective_on_sat_instance_equals_counter(self):
        """Paper: on a SAT instance the PO score degenerates to the counter."""
        p = Prefix.exists_only([1, 2, 3])
        k = keeper_for(p, [(1, 2), (-1, 3)])
        for lit in (1, -1, 2, -2, 3, -3):
            assert k.effective(lit) == k.score[lit]


class TestPickLiteral:
    def test_empty_available(self):
        p = Prefix.exists_only([1])
        assert pick_literal("levelsub", keeper_for(p), []) is None

    def test_naive_picks_smallest(self):
        p = Prefix.exists_only([1, 2, 3])
        assert pick_literal("naive", keeper_for(p), [3, 1, 2]) == 1

    def test_counter_picks_hottest(self):
        p = Prefix.exists_only([1, 2])
        k = keeper_for(p, [(2,), (2,), (-1,)])
        assert pick_literal("counter", k, [1, 2]) == 2

    def test_polarity_follows_score(self):
        p = Prefix.exists_only([1])
        k = keeper_for(p, [(-1,), (-1,)])
        assert pick_literal("counter", k, [1]) == -1

    def test_levelsub_prefers_outer_levels(self):
        phi = paper_example()
        k = keeper_for(phi.prefix, [c.lits for c in phi.clauses])
        # x0 (level 1) must beat any deeper variable, whatever the counters.
        lit = pick_literal("levelsub", k, [1, 3, 6])
        assert abs(lit) == 1

    def test_unknown_policy_rejected(self):
        p = Prefix.exists_only([1])
        with pytest.raises(ValueError):
            pick_literal("sideways", keeper_for(p), [1])

    def test_all_policies_return_valid_literal(self):
        phi = paper_example()
        k = keeper_for(phi.prefix, [c.lits for c in phi.clauses])
        available = [1, 3, 4]
        for policy in POLICIES:
            lit = pick_literal(policy, k, available)
            assert abs(lit) in available
