"""Tests for the recursive Figure-1 Q-DLL reference solver."""

import random

import pytest

from repro.core.expansion import evaluate
from repro.core.formula import QBF, paper_example
from repro.core.literals import EXISTS, FORALL
from repro.core.result import BudgetExceeded
from repro.core.simple import first_top_literal, q_dll
from repro.generators.random_qbf import random_qbf


def test_true_on_empty_matrix():
    value, stats, _ = q_dll(QBF.prenex([(EXISTS, [1])], []))
    assert value
    assert stats.branches == 0


def test_false_on_contradictory_clause():
    # An all-universal clause is contradictory before any search (Lemma 4).
    value, stats, _ = q_dll(QBF.prenex([(FORALL, [1]), (EXISTS, [2])], [(1,), (2,)]))
    assert not value
    assert stats.branches == 0


def test_unit_propagation_used():
    phi = QBF.prenex([(EXISTS, [1, 2])], [(1,), (-1, 2)])
    value, stats, _ = q_dll(phi)
    assert value
    assert stats.units >= 2
    assert stats.branches == 0


def test_paper_example_false():
    value, _, _ = q_dll(paper_example())
    assert not value


def test_paper_example_tree_recorded():
    value, _, tree = q_dll(paper_example(), record_tree=True)
    assert not value
    assert tree is not None
    assert tree.verdict is False
    rendered = tree.render()
    assert "FALSE" in rendered


def test_figure2_branch_shape():
    """Reproduce the Figure 2 search tree: the x̄0 branch is closed using
    only y1 and the x0 branch using only y2 — a branching order impossible
    under any total-order extension of the prefix (Section V)."""

    def fig2_heuristic(formula):
        p = formula.prefix
        tops = p.top_variables()
        exist_tops = [v for v in tops if p.quant(v) is EXISTS]
        if exist_tops:
            return -min(exist_tops) if 1 in exist_tops else min(exist_tops)

        def weight(y):
            sub = {y} | {w for w in p.variables if p.prec(y, w)}
            return sum(
                1 for c in formula.clauses if any(abs(l) in sub for l in c.lits)
            )

        return -max(tops, key=weight)

    value, stats, tree = q_dll(paper_example(), heuristic=fig2_heuristic, record_tree=True)
    assert not value
    # Root branches on x̄0 then x0.
    assert [child.path[-1] for child in tree.children] == [-1, 1]
    left, right = tree.children
    # Left subtree branches on ȳ1 only, right subtree on ȳ2 only.
    assert left.children[0].path[-1] == -2
    assert right.children[0].path[-1] == -5
    # The optimal Figure 2 tree assigns exactly 8 literals as branches.
    assert stats.branches == 8


def test_budget_raises():
    rng = random.Random(7)
    phi = random_qbf(rng, prenex=True, num_blocks=3, block_size=2, num_clauses=12)
    with pytest.raises(BudgetExceeded):
        q_dll(phi, max_branches=0)


@pytest.mark.parametrize("seed", range(30))
def test_matches_oracle_on_random_qbfs(seed):
    rng = random.Random(seed)
    phi = random_qbf(
        rng, prenex=True, num_blocks=3, block_size=2, num_clauses=9, clause_len=3
    )
    expected = evaluate(phi)
    value, _, _ = q_dll(phi)
    assert value == expected


@pytest.mark.parametrize("seed", range(15))
def test_matches_oracle_on_random_trees(seed):
    rng = random.Random(1000 + seed)
    phi = random_qbf(rng, prenex=False, depth=3, branching=2, block_size=2)
    expected = evaluate(phi)
    value, _, _ = q_dll(phi)
    assert value == expected


def test_first_top_literal_returns_top():
    phi = paper_example()
    lit = first_top_literal(phi)
    assert abs(lit) in phi.prefix.top_variables()
