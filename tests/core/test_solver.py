"""Tests for the iterative QDPLL engine, including oracle fuzzing."""

import itertools
import random

import pytest

from repro.core.expansion import evaluate
from repro.core.formula import QBF, paper_example
from repro.core.literals import EXISTS, FORALL
from repro.core.result import Outcome
from repro.core.solver import QdpllSolver, SolverConfig, solve
from repro.generators.random_qbf import random_qbf


class TestBasics:
    def test_empty_matrix_true(self):
        assert solve(QBF.prenex([(EXISTS, [1])], [])).outcome is Outcome.TRUE

    def test_empty_clause_false(self):
        assert solve(QBF.prenex([(EXISTS, [1])], [()])).outcome is Outcome.FALSE

    def test_all_universal_clause_false(self):
        phi = QBF.prenex([(FORALL, [1]), (EXISTS, [2])], [(1,), (2,)])
        assert solve(phi).outcome is Outcome.FALSE

    def test_unit_only_no_decisions(self):
        phi = QBF.prenex([(EXISTS, [1, 2])], [(1,), (-1, 2)])
        result = solve(phi)
        assert result.outcome is Outcome.TRUE
        assert result.stats.decisions == 0

    def test_sat_true_false(self):
        assert solve(QBF.prenex([(EXISTS, [1, 2])], [(1, 2), (-1, 2)])).value
        assert not solve(QBF.prenex([(EXISTS, [1])], [(1,), (-1,)])).value

    def test_alternation_order_matters(self):
        matrix = [(1, 2), (-1, -2)]
        ex_all = QBF.prenex([(EXISTS, [1]), (FORALL, [2])], matrix)
        all_ex = QBF.prenex([(FORALL, [2]), (EXISTS, [1])], matrix)
        assert solve(ex_all).outcome is Outcome.FALSE
        assert solve(all_ex).outcome is Outcome.TRUE

    def test_paper_example_false(self):
        assert solve(paper_example()).outcome is Outcome.FALSE

    def test_tree_formula(self):
        phi = QBF.tree(
            [(EXISTS, (1,), ()), (FORALL, (2,), ((EXISTS, (3,), ()),))],
            [(1,), (2, 3), (-2, -3)],
        )
        assert solve(phi).outcome is Outcome.TRUE

    def test_budget_yields_unknown(self):
        rng = random.Random(3)
        phi = random_qbf(rng, prenex=True, num_blocks=4, block_size=3, num_clauses=30)
        result = solve(phi, SolverConfig(max_decisions=1, pure_literals=False))
        assert result.outcome is Outcome.UNKNOWN
        assert result.timed_out

    def test_stats_populated(self):
        rng = random.Random(11)
        phi = random_qbf(rng, prenex=True, num_blocks=3, block_size=2, num_clauses=12)
        result = solve(phi)
        assert result.stats.decisions >= 0
        assert result.seconds >= 0.0


def _all_configs():
    """Feature-toggle grid used by the fuzz tests."""
    configs = []
    for learn_clauses, learn_cubes, pure in itertools.product(
        (False, True), repeat=3
    ):
        configs.append(
            SolverConfig(
                learn_clauses=learn_clauses,
                learn_cubes=learn_cubes,
                pure_literals=pure,
            )
        )
    configs.append(SolverConfig(policy="naive"))
    configs.append(SolverConfig(policy="counter"))
    configs.append(SolverConfig(policy="subtree"))
    configs.append(SolverConfig(backjump="shallow"))
    return configs


CONFIGS = _all_configs()


@pytest.mark.parametrize("seed", range(35))
def test_fuzz_prenex_against_oracle(seed):
    rng = random.Random(seed)
    phi = random_qbf(
        rng,
        prenex=True,
        num_blocks=rng.randint(2, 4),
        block_size=rng.randint(1, 2),
        num_clauses=rng.randint(4, 14),
        clause_len=rng.randint(2, 3),
    )
    expected = evaluate(phi)
    for config in CONFIGS:
        result = solve(phi, config)
        assert result.outcome is not Outcome.UNKNOWN
        assert result.value == expected, (seed, config)


@pytest.mark.parametrize("seed", range(35))
def test_fuzz_trees_against_oracle(seed):
    rng = random.Random(10_000 + seed)
    phi = random_qbf(
        rng,
        prenex=False,
        depth=rng.randint(2, 3),
        branching=2,
        block_size=rng.randint(1, 2),
        clauses_per_scope=rng.randint(1, 3),
        clause_len=rng.randint(2, 3),
    )
    expected = evaluate(phi)
    for config in CONFIGS:
        result = solve(phi, config)
        assert result.outcome is not Outcome.UNKNOWN
        assert result.value == expected, (seed, config)


@pytest.mark.parametrize("seed", range(10))
def test_fuzz_universal_heavy(seed):
    """Instances starting with a universal block exercise cube learning."""
    rng = random.Random(77_000 + seed)
    phi = random_qbf(
        rng,
        prenex=True,
        num_blocks=3,
        block_size=2,
        num_clauses=8,
        clause_len=3,
        first=FORALL,
    )
    expected = evaluate(phi)
    for config in CONFIGS:
        assert solve(phi, config).value == expected, (seed, config)


def test_learning_produces_constraints():
    rng = random.Random(5)
    for _ in range(20):
        phi = random_qbf(rng, prenex=True, num_blocks=3, block_size=2, num_clauses=14)
        solver = QdpllSolver(phi, SolverConfig())
        solver.solve()
        if solver.stats.learned_clauses or solver.stats.learned_cubes:
            return
    pytest.fail("no run learned any constraint")


def test_solver_is_deterministic():
    rng = random.Random(42)
    phi = random_qbf(rng, prenex=False, depth=3, block_size=2)
    a = solve(phi)
    b = solve(phi)
    assert a.outcome == b.outcome
    assert a.stats.decisions == b.stats.decisions
    assert a.stats.conflicts == b.stats.conflicts
