"""The paradigm registry: one Solver protocol, every engine behind it."""

import pytest

from repro.core.engine.config import PARADIGMS, SolverConfig, default_paradigm
from repro.core.expand import ExpansionSolver
from repro.core.expansion import evaluate
from repro.core.formula import paper_example
from repro.core.paradigm import (
    Capabilities,
    CapabilityError,
    Solver,
    available_paradigms,
    get_paradigm,
    register_paradigm,
    registry,
    solve_formula,
)
from repro.core.result import Outcome
from repro.core.simple import QdllReferenceSolver
from repro.core.solver import SearchSolver, solve
from repro.robustness.checkpoint import config_digest


def _paper():
    return paper_example()


class TestRegistry:
    def test_every_declared_paradigm_is_registered(self):
        # The static tuple in config and the dynamic registry must agree:
        # a paradigm you can configure is a paradigm you can get.
        assert available_paradigms() == PARADIGMS
        for name in PARADIGMS:
            cls = get_paradigm(name)
            assert issubclass(cls, Solver)
            assert cls.name == name
            assert isinstance(cls.capabilities, Capabilities)

    def test_registry_maps_names_to_the_known_classes(self):
        reg = registry()
        assert reg["search"] is SearchSolver
        assert reg["expansion"] is ExpansionSolver
        assert reg["qdll"] is QdllReferenceSolver

    def test_no_unregistered_solve_entry_points(self):
        # Every solving engine in repro.core is reachable through the
        # registry: the orphaned entry points (core.simple.q_dll, the raw
        # QdpllSolver) are wrapped by registered Solver classes, and the
        # module-level solve() dispatches on config.paradigm. If someone
        # adds an engine without registering it, this inventory fails.
        import repro.core.expand as expand_mod
        import repro.core.simple as simple_mod
        import repro.core.solver as solver_mod

        registered = set(registry().values())
        for mod in (expand_mod, simple_mod, solver_mod):
            solvers = {
                obj
                for obj in vars(mod).values()
                if isinstance(obj, type)
                and issubclass(obj, Solver)
                and obj is not Solver
            }
            assert solvers <= registered

    def test_unknown_paradigm_is_rejected_everywhere(self):
        with pytest.raises(ValueError, match="unknown paradigm"):
            SolverConfig(paradigm="magic")
        with pytest.raises(ValueError):
            get_paradigm("magic")
        with pytest.raises(ValueError, match="not declared"):
            register_paradigm(
                type("Rogue", (ExpansionSolver,), {"name": "rogue"})
            )

    def test_default_paradigm_reads_the_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARADIGM", raising=False)
        assert default_paradigm() == "search"
        monkeypatch.setenv("REPRO_PARADIGM", "expansion")
        assert default_paradigm() == "expansion"
        assert SolverConfig().paradigm == "expansion"

    def test_get_paradigm_defaults_to_the_configured_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARADIGM", "qdll")
        assert get_paradigm() is QdllReferenceSolver


class TestCapabilities:
    def test_flags_are_honest(self):
        assert SearchSolver.capabilities.proof
        assert SearchSolver.capabilities.checkpoint
        assert SearchSolver.capabilities.exchange
        for cls in (ExpansionSolver, QdllReferenceSolver):
            assert not cls.capabilities.proof
            assert not cls.capabilities.checkpoint
            assert not cls.capabilities.exchange
            assert cls.capabilities.interrupt

    @pytest.mark.parametrize("paradigm", ["expansion", "qdll"])
    def test_proof_mismatch_raises(self, paradigm):
        with pytest.raises(CapabilityError, match="proof"):
            solve_formula(
                _paper(), SolverConfig(paradigm=paradigm), proof=object()
            )

    @pytest.mark.parametrize("paradigm", ["expansion", "qdll"])
    def test_checkpoint_mismatch_raises(self, paradigm, tmp_path):
        with pytest.raises(CapabilityError, match="checkpoint"):
            solve_formula(
                _paper(),
                SolverConfig(paradigm=paradigm),
                checkpoint_to=str(tmp_path / "ck.repro-ckpt"),
            )

    def test_capability_error_is_a_value_error(self):
        # The serve daemon's dispatch loop maps ValueError subclasses to
        # structured protocol errors; CapabilityError must ride that path.
        err = CapabilityError("expansion", "proof logging")
        assert isinstance(err, ValueError)
        assert err.paradigm == "expansion"
        assert err.capability == "proof logging"

    def test_solve_before_load_raises(self):
        with pytest.raises(RuntimeError, match="load"):
            ExpansionSolver(SolverConfig(paradigm="expansion")).solve()


class TestDispatch:
    def test_all_paradigms_agree_on_the_paper_example(self):
        phi = _paper()
        truth = evaluate(phi)
        for name in PARADIGMS:
            result = solve_formula(phi, SolverConfig(paradigm=name))
            assert result.outcome is (
                Outcome.TRUE if truth else Outcome.FALSE
            ), name

    def test_module_level_solve_dispatches_on_config(self):
        phi = _paper()
        baseline = solve(phi)
        for name in ("expansion", "qdll"):
            routed = solve(phi, SolverConfig(paradigm=name))
            assert routed.outcome is baseline.outcome

    def test_solver_records_stats(self):
        phi = _paper()
        engine = ExpansionSolver(SolverConfig(paradigm="expansion"))
        engine.load(phi)
        result = engine.solve()
        assert engine.stats is result.stats
        assert result.stats.decisions > 0

    def test_budget_exhaustion_is_unknown(self):
        config = SolverConfig(paradigm="expansion", max_decisions=1)
        result = solve_formula(_paper(), config)
        assert result.outcome is Outcome.UNKNOWN

    def test_interrupt_flag_is_polled(self):
        class AlwaysSet:
            def is_set(self):
                return True

        result = solve_formula(
            _paper(),
            SolverConfig(paradigm="expansion"),
            interrupt=AlwaysSet(),
        )
        assert result.outcome is Outcome.UNKNOWN
        assert result.interrupted


def test_paradigm_is_excluded_from_checkpoint_digests():
    # A checkpoint written under the default paradigm must stay resumable
    # regardless of the session's REPRO_PARADIGM: the digest pins only the
    # search-relevant switches.
    a = config_digest(SolverConfig(paradigm="search"))
    b = config_digest(SolverConfig(paradigm="expansion"))
    assert a == b
