"""Tests for outcome/statistics containers."""

import pytest

from repro.core.result import BudgetExceeded, Outcome, SolveResult, SolverStats


class TestOutcome:
    def test_truthiness(self):
        assert bool(Outcome.TRUE) is True
        assert bool(Outcome.FALSE) is False

    def test_unknown_has_no_truth_value(self):
        with pytest.raises(ValueError):
            bool(Outcome.UNKNOWN)

    def test_values(self):
        assert Outcome("true") is Outcome.TRUE
        assert Outcome("unknown") is Outcome.UNKNOWN


class TestSolveResult:
    def test_value_property(self):
        assert SolveResult(Outcome.TRUE).value is True
        assert SolveResult(Outcome.FALSE).value is False

    def test_timed_out(self):
        assert SolveResult(Outcome.UNKNOWN).timed_out
        assert not SolveResult(Outcome.TRUE).timed_out

    def test_repr_contains_outcome(self):
        r = SolveResult(Outcome.FALSE, SolverStats(decisions=3), 0.5)
        assert "false" in repr(r)
        assert "decisions=3" in repr(r)


class TestSolverStats:
    def test_backtracks_is_conflicts_plus_solutions(self):
        stats = SolverStats(conflicts=3, solutions=4)
        assert stats.backtracks == 7

    def test_defaults_zero(self):
        stats = SolverStats()
        assert stats.decisions == 0
        assert stats.learned_clauses == 0
        assert stats.max_trail == 0


def test_budget_exceeded_records_spent():
    err = BudgetExceeded(42)
    assert err.spent == 42
    assert "42" in str(err)
