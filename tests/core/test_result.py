"""Tests for outcome/statistics containers."""

from dataclasses import fields

import pytest

from repro.core.result import (
    BudgetExceeded,
    Outcome,
    SolveResult,
    SolverStats,
    UnknownOutcomeError,
)


class TestOutcome:
    def test_truthiness(self):
        assert bool(Outcome.TRUE) is True
        assert bool(Outcome.FALSE) is False

    def test_unknown_has_no_truth_value(self):
        with pytest.raises(ValueError):
            bool(Outcome.UNKNOWN)

    def test_unknown_raises_typed_error_without_budget(self):
        with pytest.raises(UnknownOutcomeError) as info:
            bool(Outcome.UNKNOWN)
        assert info.value.spent is None

    def test_values(self):
        assert Outcome("true") is Outcome.TRUE
        assert Outcome("unknown") is Outcome.UNKNOWN


class TestSolveResult:
    def test_value_property(self):
        assert SolveResult(Outcome.TRUE).value is True
        assert SolveResult(Outcome.FALSE).value is False

    def test_unknown_value_carries_spent_budget(self):
        result = SolveResult(Outcome.UNKNOWN, SolverStats(decisions=123))
        with pytest.raises(UnknownOutcomeError) as info:
            result.value
        assert info.value.spent == 123
        assert "123" in str(info.value)
        # Backward compatibility: pre-existing ValueError guards still catch.
        assert isinstance(info.value, ValueError)

    def test_timed_out(self):
        assert SolveResult(Outcome.UNKNOWN).timed_out
        assert not SolveResult(Outcome.TRUE).timed_out

    def test_repr_contains_outcome(self):
        r = SolveResult(Outcome.FALSE, SolverStats(decisions=3), 0.5)
        assert "false" in repr(r)
        assert "decisions=3" in repr(r)


class TestSolverStats:
    def test_backtracks_is_conflicts_plus_solutions(self):
        stats = SolverStats(conflicts=3, solutions=4)
        assert stats.backtracks == 7

    def test_defaults_zero(self):
        stats = SolverStats()
        assert stats.decisions == 0
        assert stats.learned_clauses == 0
        assert stats.max_trail == 0


def test_budget_exceeded_records_spent():
    err = BudgetExceeded(42)
    assert err.spent == 42
    assert "42" in str(err)


def test_every_stats_field_is_exercised_by_some_run():
    """Guard against dead counters: each field must move in some real run.

    The dead ``restarts`` field sat at zero forever before being removed;
    this test fails the moment another counter exists that no solver run
    ever touches.
    """
    import warnings
    from unittest import mock

    from repro.core.engine import native as native_mod
    from repro.core.formula import paper_example
    from repro.core.solver import SolverConfig, solve
    from repro.generators.ncf import NcfParams, generate_ncf

    runs = [
        solve(paper_example()),
        solve(paper_example(), SolverConfig(learn_clauses=False, learn_cubes=False)),
        solve(generate_ncf(NcfParams(dep=4, var=3, cls=9, lpc=4, seed=0))),
        solve(generate_ncf(NcfParams(dep=4, var=3, cls=6, lpc=4, seed=1))),
        # live learned cubes get re-examined (cube_visits) only once the
        # search revisits them from above; this instance is known to
        solve(generate_ncf(NcfParams(dep=4, var=4, cls=15, lpc=4, seed=3))),
        # the watched backend is the only one that moves watcher_swaps
        solve(
            generate_ncf(NcfParams(dep=4, var=3, cls=9, lpc=4, seed=0)),
            SolverConfig(engine="watched"),
        ),
    ]
    # engine_fallback (a string, not a counter) only moves when the native
    # kernel is unavailable; simulate that so the field is exercised here too.
    with mock.patch.object(native_mod, "_native", None), warnings.catch_warnings():
        warnings.simplefilter("ignore", native_mod.NativeFallbackWarning)
        runs.append(solve(paper_example(), SolverConfig(engine="native")))
    for f in fields(SolverStats):
        assert any(
            bool(getattr(r.stats, f.name)) for r in runs
        ), "SolverStats.%s is never exercised" % f.name
