"""Tests for the quantifier-tree prefix: ≺ order, d/f stamps, normalization."""

import random

import pytest

from repro.core.formula import paper_example
from repro.core.literals import EXISTS, FORALL
from repro.core.prefix import Prefix


def paper_prefix():
    """Prefix of equation (1): x0=1, y1=2, x1=3, x2=4, y2=5, x3=6, x4=7."""
    return paper_example().prefix


class TestPaperExampleStamps:
    """Section VI lists the d/f values for the running example."""

    def test_discovery_stamps(self):
        p = paper_prefix()
        assert p.d(1) == 1  # x0
        assert p.d(2) == 2  # y1
        assert p.d(3) == 3 and p.d(4) == 3  # x1, x2
        assert p.d(5) == 4  # y2
        assert p.d(6) == 5 and p.d(7) == 5  # x3, x4

    def test_finish_stamps(self):
        p = paper_prefix()
        assert p.f(2) == 3  # y1
        assert p.f(3) == 3 and p.f(4) == 3
        assert p.f(1) == 5  # x0
        assert p.f(5) == 5  # y2
        assert p.f(6) == 5 and p.f(7) == 5

    def test_equation_13_order(self):
        p = paper_prefix()
        # x0 precedes everything else.
        for v in (2, 3, 4, 5, 6, 7):
            assert p.prec(1, v)
        # y1 precedes x1, x2 but not the other branch.
        assert p.prec(2, 3) and p.prec(2, 4)
        assert not p.prec(2, 5)
        assert not p.prec(2, 6)
        # No order within a block, no reverse order.
        assert not p.prec(3, 4)
        assert not p.prec(3, 1)
        assert not p.prec(6, 5)

    def test_levels(self):
        p = paper_prefix()
        assert p.level(1) == 1
        assert p.level(2) == 2 and p.level(5) == 2
        assert p.level(3) == 3 and p.level(7) == 3
        assert p.prefix_level == 3

    def test_top_variables(self):
        assert paper_prefix().top_variables() == (1,)

    def test_not_prenex(self):
        assert not paper_prefix().is_prenex


class TestLinearPrefix:
    def test_total_order(self):
        p = Prefix.linear([(EXISTS, [1, 2]), (FORALL, [3]), (EXISTS, [4])])
        assert p.is_prenex
        assert p.prec(1, 3) and p.prec(3, 4) and p.prec(1, 4)
        assert not p.prec(1, 2)
        assert not p.prec(4, 1)
        assert p.prefix_level == 3

    def test_adjacent_same_quant_blocks_merge(self):
        p = Prefix.linear([(EXISTS, [1]), (EXISTS, [2]), (FORALL, [3])])
        assert not p.prec(1, 2)
        assert p.prec(1, 3) and p.prec(2, 3)
        assert p.level(1) == 1 and p.level(2) == 1
        assert len(p.blocks) == 2

    def test_linear_blocks_roundtrip(self):
        blocks = [(EXISTS, (1, 2)), (FORALL, (3,)), (EXISTS, (4,))]
        p = Prefix.linear(blocks)
        assert p.linear_blocks() == blocks

    def test_linear_blocks_rejects_tree(self):
        with pytest.raises(ValueError):
            paper_prefix().linear_blocks()

    def test_exists_only(self):
        p = Prefix.exists_only([1, 2, 3])
        assert p.is_prenex
        assert p.prefix_level == 1
        assert not p.prec(1, 2)

    def test_empty(self):
        p = Prefix.linear([])
        assert p.is_prenex
        assert p.num_vars == 0
        assert p.prefix_level == 0
        assert p.top_variables() == ()


class TestNormalization:
    def test_same_quant_parent_child_merge(self):
        p = Prefix.tree([(EXISTS, (1,), ((EXISTS, (2,), ((FORALL, (3,), ()),)),))])
        assert len(p.blocks) == 2
        assert not p.prec(1, 2)
        assert p.prec(1, 3) and p.prec(2, 3)

    def test_empty_block_spliced(self):
        p = Prefix.tree([(EXISTS, (1,), ((FORALL, (), ((EXISTS, (2,), ()),)),))])
        # ∀{} disappears; ∃{2} merges into ∃{1}.
        assert len(p.blocks) == 1
        assert not p.prec(1, 2)

    def test_same_quant_nested_with_alternation_keeps_order(self):
        # ∃1 ∀2 ∃3 — 1 ≺ 3 through the alternation.
        p = Prefix.tree([(EXISTS, (1,), ((FORALL, (2,), ((EXISTS, (3,), ()),)),))])
        assert p.prec(1, 3)
        assert p.prec(1, 2) and p.prec(2, 3)

    def test_forest_roots_are_unordered(self):
        p = Prefix.tree([(EXISTS, (1,), ()), (FORALL, (2,), ())])
        assert not p.prec(1, 2) and not p.prec(2, 1)
        assert p.level(1) == 1 and p.level(2) == 1
        assert set(p.top_variables()) == {1, 2}

    def test_duplicate_binding_rejected(self):
        with pytest.raises(ValueError):
            Prefix.tree([(EXISTS, (1,), ((FORALL, (1,), ()),))])

    def test_nonpositive_variable_rejected(self):
        with pytest.raises(ValueError):
            Prefix.tree([(EXISTS, (0,), ())])


class TestRestrict:
    def test_restrict_removes_variable(self):
        p = paper_prefix().restrict([2])
        assert 2 not in p
        # With y1 gone there is no alternation left between x0 and x1: the
        # scope-faithful cofactor drops the derived pair x0 ≺ x1 (they are
        # now adjacent same-quantifier blocks and commute).
        assert not p.prec(1, 3)
        # The other branch still alternates through y2.
        assert p.prec(1, 6)

    def test_restrict_merges_across_removed_alternation(self):
        p = Prefix.linear([(EXISTS, [1]), (FORALL, [2]), (EXISTS, [3])])
        q = p.restrict([2])
        assert not q.prec(1, 3)
        assert q.level(3) == 1

    def test_restrict_keeps_order_with_other_paths(self):
        p = paper_prefix()
        q = p.restrict([3, 4])  # drop x1, x2; y1 keeps no children
        assert q.prec(1, 2)
        assert q.prec(1, 6)


class TestDunder:
    def test_equality_ignores_child_order(self):
        a = Prefix.tree([(EXISTS, (1,), ((FORALL, (2,), ()), (FORALL, (3,), ())))])
        b = Prefix.tree([(EXISTS, (1,), ((FORALL, (3,), ()), (FORALL, (2,), ())))])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        a = Prefix.linear([(EXISTS, [1]), (FORALL, [2])])
        b = Prefix.linear([(FORALL, [2]), (EXISTS, [1])])
        assert a != b

    def test_repr_contains_symbols(self):
        r = repr(Prefix.linear([(EXISTS, [1]), (FORALL, [2])]))
        assert "∃" in r and "∀" in r

    def test_contains(self):
        p = paper_prefix()
        assert 1 in p and 7 in p and 8 not in p


def _reference_prec(spec_roots, z1, z2):
    """≺ computed directly from the Section II definition on a raw spec."""
    parent = {}
    node_of = {}
    quant_of_node = {}
    node_has_vars = {}
    counter = [0]

    def walk(spec, par):
        counter[0] += 1
        node = counter[0]
        parent[node] = par
        quant, variables, children = spec[0], spec[1], spec[2] if len(spec) > 2 else ()
        quant_of_node[node] = quant
        node_has_vars[node] = bool(variables)
        for v in variables:
            node_of[v] = node
        for child in children:
            walk(child, node)

    for spec in spec_roots:
        walk(spec, None)
    n1, n2 = node_of[z1], node_of[z2]
    if n1 == n2:
        return False
    # Is n1 a proper ancestor of n2?
    chain = []
    node = parent[n2]
    while node is not None and node != n1:
        chain.append(node)
        node = parent[node]
    if node != n1:
        return False
    q1, q2 = quant_of_node[n1], quant_of_node[n2]
    if q1 is not q2:
        return True
    # Same quantifier: the Section II definition needs an intermediate
    # *variable* of the dual quantifier — empty blocks do not provide one.
    return any(quant_of_node[n] is not q1 and node_has_vars[n] for n in chain)


def _random_spec(rng, next_var, depth):
    quant = rng.choice([EXISTS, FORALL])
    nvars = rng.randint(0, 2)
    vs = tuple(range(next_var[0], next_var[0] + nvars))
    next_var[0] += nvars
    children = []
    if depth > 0:
        for _ in range(rng.randint(0, 2)):
            children.append(_random_spec(rng, next_var, depth - 1))
    return (quant, vs, tuple(children))


@pytest.mark.parametrize("seed", range(40))
def test_prec_matches_reference_on_random_specs(seed):
    """Property: normalized-tree prec == the raw Section II definition."""
    rng = random.Random(seed)
    next_var = [1]
    roots = [_random_spec(rng, next_var, 3) for _ in range(rng.randint(1, 2))]
    prefix = Prefix.tree(roots)
    variables = prefix.variables
    for z1 in variables:
        for z2 in variables:
            if z1 == z2:
                continue
            assert prefix.prec(z1, z2) == _reference_prec(roots, z1, z2), (
                seed,
                z1,
                z2,
            )


@pytest.mark.parametrize("seed", range(20))
def test_levels_match_longest_chain(seed):
    """Property: level(z) == 1 + max level over ≺-predecessors."""
    rng = random.Random(seed)
    next_var = [1]
    roots = [_random_spec(rng, next_var, 3)]
    prefix = Prefix.tree(roots)
    for z in prefix.variables:
        preds = [w for w in prefix.variables if prefix.prec(w, z)]
        expected = 1 + max((prefix.level(w) for w in preds), default=0)
        assert prefix.level(z) == expected
