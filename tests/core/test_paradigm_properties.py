"""Hypothesis property suite: the paradigms agree on random QBFs.

The expansion engine implements the semantics directly (iterated cofactor
expansion over the prefix's partial order), so verdict agreement with the
search engines on random instances — prenex and tree prefixes, both
propagation backends, the TO and PO pipelines — is the strongest cheap
evidence that the Solver protocol refactor changed plumbing, not meaning.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.engine.config import SolverConfig
from repro.core.expand import expand_solve
from repro.core.expansion import evaluate
from repro.core.paradigm import solve_formula
from repro.core.result import Outcome
from repro.core.solver import solve
from repro.generators.random_qbf import random_prenex_qbf, random_tree_qbf
from repro.prenexing.strategies import prenex

seeds = st.integers(min_value=0, max_value=10_000_000)


def _truth(phi) -> Outcome:
    return Outcome.TRUE if evaluate(phi) else Outcome.FALSE


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_expansion_agrees_with_search_on_prenex_qbfs(seed):
    phi = random_prenex_qbf(random.Random(seed))
    truth = _truth(phi)
    assert expand_solve(phi).outcome is truth
    for engine in ("counters", "watched"):
        config = SolverConfig(engine=engine, paradigm="search")
        assert solve(phi, config).outcome is truth, engine


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_expansion_agrees_with_search_on_tree_qbfs(seed):
    # PO pipeline: both paradigms work the tree prefix directly; TO
    # pipeline: both work the prenexed formula. All four verdicts and the
    # oracle must coincide.
    phi = random_tree_qbf(random.Random(seed))
    flat = prenex(phi, "eu_au")
    truth = _truth(phi)
    for formula in (phi, flat):
        assert expand_solve(formula).outcome is truth
        for engine in ("counters", "watched"):
            config = SolverConfig(engine=engine, paradigm="search")
            assert solve(formula, config).outcome is truth, engine


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_reference_qdll_agrees_too(seed):
    phi = random_prenex_qbf(random.Random(seed))
    result = solve_formula(phi, SolverConfig(paradigm="qdll"))
    assert result.outcome is _truth(phi)
