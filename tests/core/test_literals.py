"""Unit tests for literal primitives."""

import pytest

from repro.core.literals import (
    EXISTS,
    FORALL,
    Quant,
    check_no_duplicate_vars,
    lit_name,
    neg,
    sign,
    var_of,
)


def test_var_of_positive_and_negative():
    assert var_of(5) == 5
    assert var_of(-5) == 5


def test_neg_is_involution():
    for lit in (1, -1, 42, -42):
        assert neg(neg(lit)) == lit
        assert neg(lit) == -lit


def test_sign():
    assert sign(3)
    assert not sign(-3)


def test_quant_dual():
    assert EXISTS.dual is FORALL
    assert FORALL.dual is EXISTS
    assert EXISTS.dual.dual is EXISTS


def test_quant_symbols():
    assert EXISTS.symbol == "∃"
    assert FORALL.symbol == "∀"


def test_quant_enum_values():
    assert Quant("e") is EXISTS
    assert Quant("a") is FORALL


def test_lit_name():
    assert lit_name(3) == "z3"
    assert lit_name(-3) == "¬z3"
    assert lit_name(7, "x") == "x7"


def test_check_no_duplicate_vars_sorts_canonically():
    assert check_no_duplicate_vars([3, -1, 2]) == (-1, 2, 3)
    assert check_no_duplicate_vars([]) == ()


def test_check_no_duplicate_vars_dedupes_identical_literals():
    assert check_no_duplicate_vars([2, 2, -1]) == (-1, 2)


def test_check_no_duplicate_vars_rejects_opposite_literals():
    with pytest.raises(ValueError):
        check_no_duplicate_vars([1, -1])


def test_check_no_duplicate_vars_rejects_zero():
    with pytest.raises(ValueError):
        check_no_duplicate_vars([0])
