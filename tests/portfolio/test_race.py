"""The portfolio racer: first verdict wins, disagreements get triaged."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.formula import paper_example
from repro.core.result import Outcome
from repro.evalx.runner import Budget
from repro.generators.random_qbf import random_qbf
from repro.portfolio import DEFAULT_ENTRANTS, ENTRANTS, race
from repro.portfolio.bench import run_portfolio_bench
from repro.robustness.faults import FaultPlan


def test_serial_race_wins_on_the_paper_example():
    result = race(paper_example(), "paper", Budget(decisions=4000), jobs=1)
    assert result.outcome in (Outcome.TRUE, Outcome.FALSE)
    assert result.winner == DEFAULT_ENTRANTS[0]  # first lane settles it
    assert result.jobs == 1
    # the remaining lanes never ran
    assert set(result.cancelled) == set(DEFAULT_ENTRANTS[1:])


def test_run_all_cross_checks_every_lane():
    result = race(
        paper_example(), "paper", Budget(decisions=4000), jobs=1, run_all=True
    )
    assert result.disagreement is None
    assert len(result.measurements) == len(DEFAULT_ENTRANTS)
    assert {m.outcome for m in result.measurements} == {result.outcome}


def test_unknown_entrant_is_rejected():
    with pytest.raises(ValueError, match="unknown entrant"):
        race(paper_example(), entrants=("PO", "nope"), jobs=1)


def test_custom_entrant_triple():
    result = race(
        paper_example(),
        "paper",
        Budget(decisions=4000),
        jobs=1,
        entrants=("mine:po:expansion",),
    )
    assert result.winner == "mine"
    assert result.outcome in (Outcome.TRUE, Outcome.FALSE)


def test_flip_verdict_forces_triage_and_certificate_wins():
    # CI's forced-disagreement check: flip the expansion lane's verdict;
    # the certificate triage must side with the search lanes' (true)
    # verdict and name the flipped lane as the loser.
    plan = FaultPlan(assignments={"paper|EXP": "flip-verdict"})
    honest = race(paper_example(), "paper", Budget(decisions=4000), jobs=1)
    result = race(
        paper_example(),
        "paper",
        Budget(decisions=4000),
        jobs=1,
        run_all=True,
        faults=plan,
    )
    assert result.disagreement is not None
    assert result.triage is not None and result.triage["resolved"]
    assert result.outcome is honest.outcome
    assert result.triage["losers"] == ["EXP"]


@given(st.integers(min_value=0, max_value=10_000_000))
@settings(max_examples=15, deadline=None)
def test_serial_race_is_deterministic(seed):
    # --jobs 1 is the reproducible mode: identical winner, outcome, and
    # per-lane decision counts on every rerun.
    phi = random_qbf(random.Random(seed))
    first = race(phi, "rand", Budget(decisions=4000), jobs=1)
    second = race(phi, "rand", Budget(decisions=4000), jobs=1)
    assert first.outcome is second.outcome
    assert first.winner == second.winner
    assert first.cancelled == second.cancelled
    assert [(m.solver, m.outcome, m.decisions) for m in first.measurements] == [
        (m.solver, m.outcome, m.decisions) for m in second.measurements
    ]


def test_pool_race_cancels_siblings():
    # Pool mode needs >= 2 cores to engage (the racer refuses to
    # oversubscribe); on smaller machines the serial path is the contract.
    import os

    result = race(paper_example(), "paper", Budget(decisions=4000), jobs=2)
    if (os.cpu_count() or 1) < 2:
        assert result.jobs == 1
        return
    assert result.jobs == 2
    assert result.outcome in (Outcome.TRUE, Outcome.FALSE)
    assert result.winner in ENTRANTS


def test_quick_bench_report_shape():
    report = run_portfolio_bench(quick=True, jobs=1)
    assert report["schema"] == "repro-portfolio-bench/1"
    assert report["mode"] == "quick"
    assert report["families"]
    fam = report["families"][0]
    for key in (
        "winners",
        "single_wall_seconds",
        "portfolio_wall_seconds",
        "best_single",
        "portfolio_vs_best_single",
        "within_bound",
    ):
        assert key in fam
    assert set(fam["single_wall_seconds"]) == set(report["entrants"])
