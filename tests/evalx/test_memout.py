"""Memory-ceiling tests: RLIMIT_AS in workers, ``memout`` records, no retry.

The allocation test asks for tens of GiB against a generous ceiling, so it
never depends on the pytest process's own baseline footprint; the fault
test exercises the same classification without allocating anything.
"""

import resource

import pytest

from repro.core.formula import paper_example
from repro.evalx.parallel import (
    STATUS_MEMOUT,
    STATUS_OK,
    Task,
    execute_task,
    run_tasks,
)
from repro.evalx.runner import Budget
from repro.robustness.faults import FaultPlan


def make_task(name):
    return Task(
        instance=name, solver="PO", formula=paper_example(),
        budget=Budget(decisions=500),
    )


# Module-level executors: picklable by reference under any mp start method.


def allocate_too_much(task):
    # ~64 GiB of int objects — far beyond the ceiling the tests set, far
    # beyond CI hosts, and safely above any interpreter baseline.
    [0] * (8 * 1024**3)
    return execute_task(task)  # pragma: no cover - allocation must fail


def allocate_modestly(task):
    buf = bytearray(8 * 1024**2)  # 8 MiB: fine under a 4 GiB ceiling
    del buf
    return execute_task(task)


class TestWorkerMemout:
    def test_breach_becomes_memout_record(self):
        records = run_tasks(
            [make_task("hog")], jobs=2, executor=allocate_too_much,
            mem_limit_mb=4096,
        )
        rec = records[0]
        assert rec.status == STATUS_MEMOUT
        assert not rec.ok
        assert "memory ceiling" in rec.error
        assert "4096 MiB" in rec.error

    def test_memout_is_never_retried(self):
        records = run_tasks(
            [make_task("hog")], jobs=2, executor=allocate_too_much,
            mem_limit_mb=4096, max_retries=3,
        )
        assert records[0].status == STATUS_MEMOUT
        assert records[0].attempts == 1

    def test_ceiling_leaves_normal_solves_alone(self):
        records = run_tasks(
            [make_task("fine")], jobs=2, executor=allocate_modestly,
            mem_limit_mb=4096,
        )
        assert records[0].status == STATUS_OK
        assert records[0].measurement is not None

    def test_parent_rlimit_is_untouched(self):
        before = resource.getrlimit(resource.RLIMIT_AS)
        run_tasks(
            [make_task("fine")], jobs=2, executor=allocate_modestly,
            mem_limit_mb=4096,
        )
        assert resource.getrlimit(resource.RLIMIT_AS) == before


class TestInjectedOom:
    def test_worker_oom_fault_classifies_as_memout(self):
        plan = FaultPlan(assignments={"victim|PO": "worker-oom"})
        records = run_tasks(
            [make_task("victim"), make_task("fine")], jobs=2, faults=plan,
        )
        by_name = {r.instance: r for r in records}
        assert by_name["victim"].status == STATUS_MEMOUT
        assert by_name["victim"].attempts == 1  # deterministic: no retry
        assert by_name["fine"].status == STATUS_OK

    def test_worker_oom_fires_on_every_attempt(self):
        # Unlike crash faults, a retry must NOT make the OOM disappear:
        # request the same label twice and get two memouts.
        plan = FaultPlan(assignments={"victim|PO": "worker-oom"})
        for _ in range(2):
            records = run_tasks([make_task("victim")], jobs=2, faults=plan)
            assert records[0].status == STATUS_MEMOUT

    def test_serial_memory_error_is_memout(self):
        records = run_tasks(
            [make_task("hog")], jobs=1, executor=raise_memory_error,
        )
        assert records[0].status == STATUS_MEMOUT
        assert records[0].attempts == 1
        assert "ran out of memory" in records[0].error


def raise_memory_error(task):
    raise MemoryError("synthetic allocation failure")


def test_memout_roundtrips_through_results_log(tmp_path):
    path = str(tmp_path / "results.jsonl")
    records = run_tasks(
        [make_task("hog")], jobs=2, executor=allocate_too_much,
        mem_limit_mb=4096, results=path,
    )
    assert records[0].status == STATUS_MEMOUT
    # A memout row resumes as a final failure, not a rerun at the same
    # ceiling — same contract as other persisted failures.
    from repro.evalx.parallel import ResultsLog

    loaded = ResultsLog(path).load()
    assert loaded[records[0].key].status == STATUS_MEMOUT
