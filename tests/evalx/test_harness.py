"""Tests for the experiment harness (runner, Table I counters, figures)."""

import pytest

from repro.core.formula import QBF, paper_example
from repro.core.literals import EXISTS, FORALL
from repro.core.result import Outcome
from repro.evalx.runner import (
    Budget,
    Measurement,
    SolverDisagreement,
    check_agreement,
    solve_po,
    solve_to,
)
from repro.evalx.scatter import (
    ScalingSeries,
    ScatterPoint,
    median,
    pair_point,
    setting_medians,
    summarize_scatter,
    virtual_best,
)
from repro.evalx.report import render_kv, render_scaling, render_scatter
from repro.evalx.table1 import Table1Row, build_row, classify_pair, render_table


def meas(solver="PO", outcome=Outcome.TRUE, decisions=100, instance="i"):
    return Measurement(
        instance=instance,
        solver=solver,
        outcome=outcome,
        decisions=decisions,
        seconds=0.01,
    )


class TestRunner:
    def test_solve_po_and_to_agree_on_paper_example(self):
        phi = paper_example()
        po = solve_po(phi, "eq1", budget=Budget(decisions=1000))
        to = solve_to(phi, "eq1", budget=Budget(decisions=1000))
        assert po.outcome is Outcome.FALSE
        assert to.outcome is Outcome.FALSE
        check_agreement(po, to)
        assert po.solver == "PO"
        assert to.solver.startswith("TO(")

    def test_budget_makes_unknown(self):
        phi = paper_example()
        po = solve_po(phi, budget=Budget(decisions=0))
        assert po.timed_out

    def test_check_agreement_raises_on_mismatch(self):
        a = meas(outcome=Outcome.TRUE)
        b = meas(solver="TO", outcome=Outcome.FALSE)
        with pytest.raises(AssertionError):
            check_agreement(a, b)

    def test_disagreement_carries_both_measurements(self):
        a = meas(outcome=Outcome.TRUE)
        b = meas(solver="TO", outcome=Outcome.FALSE)
        with pytest.raises(SolverDisagreement) as excinfo:
            check_agreement(a, b)
        assert excinfo.value.a is a
        assert excinfo.value.b is b
        assert "disagreement" in str(excinfo.value)
        # Back-compat: callers guarding with AssertionError still work.
        assert isinstance(excinfo.value, AssertionError)

    def test_budget_defaults_decision_only(self):
        # With a decision budget in force the cooperative wall-clock cap
        # defaults to off, so decision counts are machine-independent.
        budget = Budget(decisions=123)
        assert budget.seconds is None
        config = budget.to_config()
        assert config.max_decisions == 123
        assert config.max_seconds is None

    def test_measurement_records_full_stats(self):
        po = solve_po(paper_example(), budget=Budget(decisions=1000))
        assert po.stats is not None
        assert po.stats.decisions == po.decisions
        assert po.stats.backtracks == po.stats.conflicts + po.stats.solutions

    def test_check_agreement_ignores_timeouts(self):
        a = meas(outcome=Outcome.UNKNOWN)
        b = meas(solver="TO", outcome=Outcome.FALSE)
        check_agreement(a, b)

    def test_overrides_forwarded(self):
        phi = paper_example()
        po = solve_po(phi, budget=Budget(decisions=1000), policy="naive")
        assert po.outcome is Outcome.FALSE


class TestTable1:
    def test_to_slower_counts(self):
        row = Table1Row("s", "eu_au")
        classify_pair(row, meas("TO", decisions=1000), meas("PO", decisions=10), tie_margin=50)
        assert row.to_slower == 1
        assert row.to_slower_10x == 1
        assert row.total == 1

    def test_tie_within_margin(self):
        row = Table1Row("s", "eu_au")
        classify_pair(row, meas("TO", decisions=120), meas("PO", decisions=100), tie_margin=50)
        assert row.ties == 1
        assert row.to_slower == 0

    def test_one_sided_timeouts(self):
        row = Table1Row("s", "eu_au")
        classify_pair(
            row,
            meas("TO", outcome=Outcome.UNKNOWN, decisions=2000),
            meas("PO", decisions=10),
            tie_margin=50,
        )
        assert row.to_timeout_only == 1
        assert row.to_slower == 1
        assert row.to_slower_10x == 1

    def test_double_timeout_is_tie(self):
        row = Table1Row("s", "eu_au")
        classify_pair(
            row,
            meas("TO", outcome=Outcome.UNKNOWN, decisions=2000),
            meas("PO", outcome=Outcome.UNKNOWN, decisions=2000),
            tie_margin=50,
        )
        assert row.both_timeout == 1
        assert row.ties == 1

    def test_build_row_and_render(self):
        pairs = [
            (meas("TO", decisions=1000), meas("PO", decisions=10)),
            (meas("TO", decisions=10), meas("PO", decisions=1000)),
        ]
        row = build_row("NCF", "eu_au", pairs)
        assert row.total == 2
        text = render_table([row])
        assert "NCF" in text and "eu_au" in text

    def test_columns_order(self):
        row = Table1Row("s", "x", 1, 2, 3, 4, 5, 6, 7, 8, total=9)
        assert row.columns == (1, 2, 3, 4, 5, 6, 7, 8)

    def test_disagreeing_pair_counted_not_raised(self):
        row = Table1Row("s", "eu_au")
        classify_pair(
            row,
            meas("TO", outcome=Outcome.TRUE, decisions=10),
            meas("PO", outcome=Outcome.FALSE, decisions=10),
            tie_margin=50,
        )
        assert row.disagreements == 1
        assert row.total == 1
        # The bogus pair must not leak into any cost column.
        assert sum(row.columns) == 0


class TestScatter:
    def test_pair_point_winner(self):
        p = pair_point("i", meas("TO", decisions=100), meas("PO", decisions=10))
        assert p.winner == "PO"
        assert p.to_cost == 100 and p.po_cost == 10

    def test_median(self):
        assert median([3, 1, 2]) == 2
        assert median([1, 2, 3, 4]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_virtual_best_prefers_completion(self):
        per = {
            "a": meas("TO(a)", outcome=Outcome.UNKNOWN, decisions=5),
            "b": meas("TO(b)", decisions=500),
        }
        assert virtual_best(per).solver == "TO(b)"

    def test_virtual_best_lowest_cost(self):
        per = {
            "a": meas("TO(a)", decisions=700),
            "b": meas("TO(b)", decisions=500),
        }
        assert virtual_best(per).solver == "TO(b)"

    def test_setting_medians_groups(self):
        runs = [
            ("s1", meas("TO", decisions=100), meas("PO", decisions=10)),
            ("s1", meas("TO", decisions=300), meas("PO", decisions=30)),
            ("s2", meas("TO", decisions=8), meas("PO", decisions=8)),
        ]
        points = setting_medians(runs)
        assert len(points) == 2
        s1 = next(p for p in points if p.label == "s1")
        assert s1.to_cost == 200 and s1.po_cost == 20

    def test_summarize(self):
        points = [
            ScatterPoint("a", po_cost=10, to_cost=100),
            ScatterPoint("b", po_cost=100, to_cost=10),
            ScatterPoint("c", po_cost=10, to_cost=10),
        ]
        stats = summarize_scatter(points)
        assert stats["points"] == 3
        assert stats["po_wins"] == 1 and stats["to_wins"] == 1 and stats["ties"] == 1
        assert stats["geomean_to_over_po"] == pytest.approx(1.0)


class TestReport:
    def test_render_scatter_smoke(self):
        points = [ScatterPoint("a", po_cost=10, to_cost=100)]
        text = render_scatter(points, title="Figure X")
        assert "Figure X" in text
        assert "*" in text
        assert "PO-wins=1" in text

    def test_render_scatter_empty(self):
        assert render_scatter([]) == "(no points)"

    def test_render_scaling(self):
        series = ScalingSeries("counter3")
        series.add(0, 10, False)
        series.add(1, 100, True)
        text = render_scaling([series], title="Figure 6")
        assert "counter3" in text and "TIMEOUT" in text
        assert series.largest_solved == 0

    def test_render_kv(self):
        text = render_kv("stats", {"a": 1, "b": 2})
        assert "stats" in text and "a" in text
