"""Certification wired into the measurement layer and the batch harness."""

import json

from repro.certify.checker import INVALID, VERIFIED
from repro.core.formula import paper_example
from repro.core.result import Outcome
from repro.evalx.parallel import (
    Record,
    ResultsLog,
    SCHEMA_VERSION,
    STATUS_DISAGREEMENT,
    Task,
    disagreement_record,
    execute_task,
    measurement_from_dict,
    measurement_to_dict,
    run_tasks,
)
from repro.evalx.runner import (
    Budget,
    Measurement,
    SolverDisagreement,
    check_agreement,
    solve_po,
    solve_to,
)


class TestCertifiedRunners:
    def test_solve_po_records_verdict(self):
        m = solve_po(paper_example(), "paper", certify=True)
        assert m.outcome is Outcome.FALSE
        assert m.certificate_status == VERIFIED
        assert m.certificate_ok is True

    def test_solve_to_checks_against_the_tree(self):
        # The TO run solves the prenex form, yet its certificate must hold
        # under the original tree's partial order.
        m = solve_to(paper_example(), "paper", certify=True)
        assert m.outcome is Outcome.FALSE
        assert m.certificate_status == VERIFIED

    def test_uncertified_runs_have_no_verdict(self):
        m = solve_po(paper_example(), "paper")
        assert m.certificate_status is None
        assert m.certificate_ok is None


class TestTaskPlumbing:
    def test_fingerprint_unchanged_without_certify(self):
        # Resume keys of pre-existing results files must not shift.
        task = Task("i", "PO", paper_example(), budget=Budget(decisions=500))
        assert "certify" not in task.fingerprint()

    def test_fingerprint_differs_with_certify(self):
        plain = Task("i", "PO", paper_example(), budget=Budget(decisions=500))
        certified = Task(
            "i", "PO", paper_example(), budget=Budget(decisions=500), certify=True
        )
        assert plain.fingerprint() != certified.fingerprint()

    def test_execute_task_certifies(self):
        task = Task("i", "PO", paper_example(), certify=True)
        m = execute_task(task)
        assert m.certificate_status == VERIFIED

    def test_run_tasks_persists_certificate_fields(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        task = Task("i", "PO", paper_example(), certify=True)
        records = run_tasks([task], results=path)
        assert records[0].measurement.certificate_status == VERIFIED
        row = json.loads(open(path).read().splitlines()[0])
        assert row["schema"] == SCHEMA_VERSION
        assert row["measurement"]["certificate_status"] == VERIFIED
        assert row["measurement"]["certificate_ok"] is True
        # Resume: the recorded run is reused, certificate verdict intact.
        again = run_tasks([task], results=path)
        assert again[0].measurement.certificate_status == VERIFIED


class TestSerialization:
    def test_measurement_roundtrip_with_certificate(self):
        m = solve_po(paper_example(), "paper", certify=True)
        back = measurement_from_dict(measurement_to_dict(m))
        assert back.certificate_status == m.certificate_status
        assert back.certificate_ok is True

    def test_v1_rows_still_load(self):
        data = {
            "instance": "i",
            "solver": "PO",
            "fingerprint": "",
            "status": "ok",
            "attempts": 1,
        }
        rec = Record.from_dict(data)
        assert rec.instance == "i"

    def test_newer_schema_rows_are_skipped_not_fatal(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        rows = [
            {"schema": SCHEMA_VERSION + 1, "instance": "future", "solver": "PO",
             "fingerprint": "f", "status": "ok", "attempts": 1,
             "some_field_we_do_not_know": {"x": 1}},
            {"schema": SCHEMA_VERSION, "instance": "now", "solver": "PO",
             "fingerprint": "f", "status": "ok", "attempts": 1},
        ]
        with open(path, "w") as fh:
            for row in rows:
                fh.write(json.dumps(row) + "\n")
        loaded = ResultsLog(path).load()
        assert ("now", "PO", "f") in loaded
        assert all(key[0] != "future" for key in loaded)


class TestCertifiedTriage:
    def _pair(self, a_status, b_status):
        a = Measurement("i", "TO", Outcome.TRUE, 10, 0.1, certificate_status=a_status)
        b = Measurement("i", "PO", Outcome.FALSE, 10, 0.1, certificate_status=b_status)
        return a, b

    def test_valid_proof_side_wins(self):
        a, b = self._pair(INVALID, VERIFIED)
        try:
            check_agreement(a, b)
        except SolverDisagreement as exc:
            assert exc.winner is b
            assert "PO" in str(exc)
        else:
            raise AssertionError("disagreement not raised")

    def test_no_winner_without_certificates(self):
        a, b = self._pair(None, None)
        try:
            check_agreement(a, b)
        except SolverDisagreement as exc:
            assert exc.winner is None
        else:
            raise AssertionError("disagreement not raised")

    def test_no_winner_when_both_verify(self):
        # Both certificates verifying for opposite outcomes means the
        # checker itself is broken; nobody gets to win that one.
        a, b = self._pair(VERIFIED, VERIFIED)
        try:
            check_agreement(a, b)
        except SolverDisagreement as exc:
            assert exc.winner is None
        else:
            raise AssertionError("disagreement not raised")

    def test_disagreement_record_carries_winner(self):
        a, b = self._pair(VERIFIED, INVALID)
        try:
            check_agreement(a, b)
        except SolverDisagreement as exc:
            rec = disagreement_record(exc)
            assert rec.status == STATUS_DISAGREEMENT
            assert rec.measurement is a
            assert "sides with" in rec.error
