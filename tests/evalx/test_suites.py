"""Smoke tests for the experiment suites (tiny budgets, tiny pools)."""

import pytest

from repro.core.result import Outcome
from repro.evalx.runner import Budget
from repro.evalx.suites import (
    PairResult,
    dia_instances,
    eval06_instances,
    fpv_instances,
    ncf_settings,
    run_dia,
    run_dia_scaling,
    run_eval06,
    run_fpv,
    run_ncf,
)

TINY = Budget(decisions=200, seconds=5.0)


class TestPools:
    def test_ncf_settings_grid(self):
        settings = ncf_settings(instances=2)
        assert len(settings) == 6
        labels = [label for label, _ in settings]
        assert len(set(labels)) == 6
        for _, params in settings:
            assert len(params) == 2

    def test_fpv_instances_distinct(self):
        pool = fpv_instances(count=5)
        assert len({p.label for p in pool}) == 5

    def test_dia_instances_cover_families(self):
        triples = dia_instances(max_n_cap=1)
        names = {label.rsplit("-", 1)[0] for label, _, _ in triples}
        assert any(n.startswith("counter") for n in names)
        assert any(n.startswith("dme") for n in names)
        assert any(n.startswith("semaphore") for n in names)
        for _, tree, flat in triples:
            assert flat.is_prenex

    def test_eval06_instances_are_prenex(self):
        for kind in ("prob", "fixed"):
            for _, phi in eval06_instances(kind, count=4):
                assert phi.is_prenex

    def test_eval06_bad_kind(self):
        with pytest.raises(ValueError):
            eval06_instances("quantum", count=1)


class TestRunners:
    def test_run_ncf_smoke(self):
        results = run_ncf(budget=TINY, instances=1, strategies=("eu_au",))
        assert len(results) == 6
        for r in results:
            assert isinstance(r, PairResult)
            assert r.po_run.solver == "PO"
            assert r.to_run("eu_au").solver == "TO(eu_au)"
            assert r.to_best is r.to_run("eu_au")

    def test_run_fpv_smoke(self):
        results = run_fpv(budget=TINY, count=2)
        assert len(results) == 2

    def test_run_dia_smoke(self):
        results = run_dia(budget=TINY, max_n_cap=0)
        assert results
        # Each model contributes n = 0 .. min(d+1, 0)+1 instances.
        assert all("-n" in r.instance for r in results)

    def test_run_eval06_smoke(self):
        kept, filtered = run_eval06("prob", budget=TINY, count=4)
        assert len(kept) + filtered == pytest.approx(4, abs=0)

    def test_run_dia_scaling_smoke(self):
        po_series, to_series = run_dia_scaling(
            "dme", sizes=(3,), budget=TINY, max_n_cap=2
        )
        assert len(po_series) == len(to_series) == 1
        assert po_series[0].points
