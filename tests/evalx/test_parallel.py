"""Tests for the fault-isolated multiprocess batch runner."""

import json
import os
import time

import pytest

from repro.core.formula import paper_example
from repro.core.result import Outcome, SolverStats
from repro.core.solver import SolverConfig
from repro.evalx.parallel import (
    Record,
    ResultsLog,
    STATUS_CRASH,
    STATUS_DISAGREEMENT,
    STATUS_HARD_TIMEOUT,
    STATUS_OK,
    Task,
    config_from_dict,
    config_to_dict,
    disagreement_record,
    execute_task,
    measurement_from_dict,
    measurement_to_dict,
    measurements_by_key,
    note_disagreement,
    run_tasks,
    stats_from_dict,
    stats_to_dict,
)
from repro.evalx.runner import Budget, Measurement, SolverDisagreement


def make_tasks(names, budget=Budget(decisions=500)):
    phi = paper_example()
    return [Task(instance=n, solver="PO", formula=phi, budget=budget) for n in names]


def record_keys(records):
    return [
        (r.instance, r.solver, r.status, r.measurement.outcome, r.measurement.decisions)
        for r in records
    ]


# Module-level executors: picklable by reference, usable under any mp start
# method.


def crash_on_bad(task):
    if task.instance.startswith("bad"):
        raise RecursionError("synthetic worker crash for %s" % task.instance)
    return execute_task(task)


def hang_on_slow(task):
    if task.instance.startswith("slow"):
        while True:  # pragma: no cover - killed by the parent
            time.sleep(0.05)
    return execute_task(task)


def always_crash(task):
    raise RuntimeError("no task should have been executed: %s" % task.instance)


class TestSerialization:
    def test_measurement_roundtrip_with_stats(self):
        m = execute_task(make_tasks(["i"])[0])
        assert isinstance(m.stats, SolverStats)
        back = measurement_from_dict(measurement_to_dict(m))
        assert back == m

    def test_measurement_roundtrip_without_stats(self):
        m = Measurement("i", "PO", Outcome.UNKNOWN, 7, 0.5)
        assert measurement_from_dict(measurement_to_dict(m)) == m

    def test_stats_roundtrip(self):
        stats = SolverStats(decisions=3, conflicts=2, learned_cubes=1)
        assert stats_from_dict(stats_to_dict(stats)) == stats

    def test_config_roundtrip(self):
        cfg = SolverConfig(policy="naive", learn_cubes=False, max_decisions=9)
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_record_roundtrip(self):
        task = make_tasks(["i"])[0]
        rec = Record(
            instance="i",
            solver="PO",
            fingerprint=task.fingerprint(),
            status=STATUS_OK,
            measurement=execute_task(task),
            attempts=2,
        )
        assert Record.from_dict(rec.to_dict()) == rec

    def test_fingerprint_distinguishes_configs(self):
        phi = paper_example()
        a = Task("i", "PO", phi, budget=Budget(decisions=10))
        b = Task("i", "PO", phi, budget=Budget(decisions=20))
        c = Task("i", "PO", phi, budget=Budget(decisions=10), overrides=(("policy", "naive"),))
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3
        assert a.fingerprint() == Task("j", "TO", phi, budget=Budget(decisions=10)).fingerprint()

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            Task("i", "PO", paper_example(), mode="sideways")


class TestSerialRunner:
    def test_jobs_one_runs_in_process(self):
        records = run_tasks(make_tasks(["a", "b"]), jobs=1)
        assert all(r.ok for r in records)
        assert [r.instance for r in records] == ["a", "b"]
        assert records[0].measurement.outcome is Outcome.FALSE

    def test_jobs_one_captures_crash_as_record(self):
        records = run_tasks(make_tasks(["a", "bad-1"]), jobs=1, executor=crash_on_bad)
        assert records[0].ok
        assert records[1].status == STATUS_CRASH
        assert "RecursionError" in records[1].error
        # Outcome-style failure: censored like a timeout, not missing.
        assert records[1].measurement.outcome is Outcome.UNKNOWN
        # bounded retry: first try + one retry by default
        assert records[1].attempts == 2

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            run_tasks([], jobs=0)


class TestPoolFaultIsolation:
    def test_crash_isolated_to_one_instance(self):
        records = run_tasks(
            make_tasks(["a", "bad-1", "b", "c"]),
            jobs=2,
            executor=crash_on_bad,
            max_retries=1,
        )
        by_instance = {r.instance: r for r in records}
        assert by_instance["bad-1"].status == STATUS_CRASH
        assert by_instance["bad-1"].attempts == 2
        assert "RecursionError" in by_instance["bad-1"].error
        for name in ("a", "b", "c"):
            assert by_instance[name].ok, name

    def test_hard_timeout_kills_worker(self):
        start = time.monotonic()
        records = run_tasks(
            make_tasks(["a", "slow-1", "b"]),
            jobs=2,
            executor=hang_on_slow,
            wall_timeout=0.5,
        )
        elapsed = time.monotonic() - start
        by_instance = {r.instance: r for r in records}
        assert by_instance["slow-1"].status == STATUS_HARD_TIMEOUT
        assert by_instance["slow-1"].measurement.timed_out
        assert by_instance["a"].ok and by_instance["b"].ok
        # The hung worker must have been terminated, not waited out.
        assert elapsed < 20

    def test_parallel_equals_serial(self):
        tasks = make_tasks(["i%d" % i for i in range(6)])
        tasks += [
            Task("i%d" % i, "TO(eu_au)", paper_example(), "to", "eu_au",
                 Budget(decisions=500))
            for i in range(6)
        ]
        serial = run_tasks(tasks, jobs=1)
        parallel = run_tasks(tasks, jobs=4, wall_timeout=60)
        assert record_keys(serial) == record_keys(parallel)


class TestResume:
    def test_resume_skips_recorded_runs(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        tasks = make_tasks(["a", "b", "c"])
        first = run_tasks(tasks[:2], jobs=1, results=path)
        assert all(r.ok for r in first)
        with open(path) as handle:
            assert len(handle.readlines()) == 2
        # Recorded keys must not be re-executed: an executor that crashes on
        # any call proves the first two tasks are served from the log.
        with pytest.raises(RuntimeError):
            always_crash(tasks[0])
        resumed = run_tasks(tasks[:2], jobs=1, results=path, executor=always_crash, max_retries=0)
        assert record_keys(resumed) == record_keys(first)
        # The third task does run, and appends to the same log.
        full = run_tasks(tasks, jobs=1, results=path)
        assert [r.instance for r in full] == ["a", "b", "c"]
        with open(path) as handle:
            assert len(handle.readlines()) == 3

    def test_changed_budget_invalidates_resume(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        run_tasks(make_tasks(["a"], budget=Budget(decisions=100)), jobs=1, results=path)
        # Same instance under a different budget is a different key: reruns.
        records = run_tasks(
            make_tasks(["a"], budget=Budget(decisions=200)), jobs=1, results=path
        )
        assert records[0].ok
        with open(path) as handle:
            assert len(handle.readlines()) == 2

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        run_tasks(make_tasks(["a"]), jobs=1, results=path)
        with open(path, "a") as handle:
            handle.write('{"instance": "b", "solver": "PO", "trunc')
        log = ResultsLog(path)
        assert len(log.load()) == 1
        # And the torn task simply reruns.
        records = run_tasks(make_tasks(["a", "b"]), jobs=1, results=path)
        assert all(r.ok for r in records)
        # The append after the tear must not glue the new row onto the
        # fragment: everything except the fragment itself stays parseable.
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        parsed = 0
        for line in lines:
            try:
                json.loads(line)
                parsed += 1
            except ValueError:
                pass
        assert parsed == len(lines) - 1 == 2

    def test_failure_records_resume_too(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        records = run_tasks(
            make_tasks(["bad-1"]), jobs=1, results=path, executor=crash_on_bad,
            max_retries=0,
        )
        assert records[0].status == STATUS_CRASH
        resumed = run_tasks(make_tasks(["bad-1"]), jobs=1, results=path)
        assert resumed[0].status == STATUS_CRASH  # served from the log


class TestDisagreementPlumbing:
    def _conflicting(self):
        a = Measurement("i", "TO(eu_au)", Outcome.TRUE, 10, 0.1)
        b = Measurement("i", "PO", Outcome.FALSE, 10, 0.1)
        return SolverDisagreement(a, b)

    def test_disagreement_record_shape(self):
        rec = disagreement_record(self._conflicting())
        assert rec.status == STATUS_DISAGREEMENT
        assert rec.instance == "i"
        assert "disagreement" in rec.error

    def test_note_disagreement_raises_without_log(self):
        with pytest.raises(SolverDisagreement):
            note_disagreement(self._conflicting(), None)

    def test_note_disagreement_logs_as_data(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        with ResultsLog(path) as log:
            rec = note_disagreement(self._conflicting(), log)
        assert rec.status == STATUS_DISAGREEMENT
        with open(path) as handle:
            row = json.loads(handle.readline())
        assert row["status"] == STATUS_DISAGREEMENT

    def test_measurements_by_key_skips_disagreements(self):
        ok = run_tasks(make_tasks(["a"]), jobs=1)[0]
        rows = [ok, disagreement_record(self._conflicting())]
        assert set(measurements_by_key(rows)) == {("a", "PO")}


class TestSuiteIntegration:
    def test_run_ncf_parallel_equals_serial(self):
        from repro.evalx.suites import run_ncf

        tiny = Budget(decisions=150)
        serial = run_ncf(budget=tiny, instances=1, strategies=("eu_au",))
        parallel = run_ncf(
            budget=tiny, instances=1, strategies=("eu_au",), jobs=2, wall_timeout=60
        )
        def key(results):
            return [
                (r.instance, r.setting, r.po_run.outcome, r.po_run.decisions,
                 r.to_run("eu_au").outcome, r.to_run("eu_au").decisions)
                for r in results
            ]
        assert key(serial) == key(parallel)

    def test_run_ncf_resumable(self, tmp_path):
        from repro.evalx.suites import run_ncf

        path = str(tmp_path / "ncf.jsonl")
        tiny = Budget(decisions=150)
        first = run_ncf(budget=tiny, instances=1, strategies=("eu_au",),
                        results_path=path)
        lines_after_first = sum(1 for _ in open(path))
        again = run_ncf(budget=tiny, instances=1, strategies=("eu_au",),
                        results_path=path)
        assert sum(1 for _ in open(path)) == lines_after_first
        assert [r.instance for r in first] == [r.instance for r in again]


def raise_keyboard_interrupt(task):
    raise KeyboardInterrupt


def raise_system_exit(task):
    raise SystemExit(1)


class _PipeStub:
    def __init__(self):
        self.sent = []

    def send(self, payload):
        self.sent.append(payload)

    def close(self):
        pass


class TestPreemptionPlumbing:
    def test_record_roundtrip_with_backoff(self):
        task = make_tasks(["i"])[0]
        rec = Record(
            instance="i",
            solver="PO",
            fingerprint=task.fingerprint(),
            status=STATUS_CRASH,
            measurement=execute_task(task),
            attempts=3,
            backoff=1.25,
        )
        assert Record.from_dict(rec.to_dict()) == rec

    def test_backoff_absent_from_row_when_zero(self):
        task = make_tasks(["i"])[0]
        rec = Record(
            instance="i",
            solver="PO",
            fingerprint=task.fingerprint(),
            status=STATUS_OK,
            measurement=execute_task(task),
        )
        assert "backoff" not in rec.to_dict()

    def test_worker_main_reraises_keyboard_interrupt(self):
        # Regression: the worker used to swallow KeyboardInterrupt into a
        # crash record and keep the process alive after Ctrl-C.
        from repro.evalx.parallel import _worker_main

        conn = _PipeStub()
        with pytest.raises(KeyboardInterrupt):
            _worker_main(make_tasks(["i"])[0], raise_keyboard_interrupt, conn)
        # ...but it still reports the crash to the parent first.
        assert conn.sent and conn.sent[0][0] == STATUS_CRASH

    def test_worker_main_reraises_system_exit(self):
        from repro.evalx.parallel import _worker_main

        conn = _PipeStub()
        with pytest.raises(SystemExit):
            _worker_main(make_tasks(["i"])[0], raise_system_exit, conn)
        assert conn.sent and conn.sent[0][0] == STATUS_CRASH

    def test_serial_runner_propagates_keyboard_interrupt(self):
        # A serial sweep must stop on Ctrl-C, not record it and march on.
        with pytest.raises(KeyboardInterrupt):
            run_tasks(make_tasks(["a"]), jobs=1, executor=raise_keyboard_interrupt)

    def test_crash_retry_records_backoff(self):
        records = run_tasks(
            make_tasks(["bad-1"]),
            jobs=1,
            executor=crash_on_bad,
            max_retries=2,
            retry_backoff=0.01,
        )
        assert records[0].status == STATUS_CRASH
        assert records[0].attempts == 3
        assert records[0].backoff > 0

    def test_backoff_is_deterministic(self):
        from repro.evalx.parallel import _backoff_delay

        key = ("i", "PO", "fp")
        assert _backoff_delay(0.5, key, 1) == _backoff_delay(0.5, key, 1)
        # exponential: attempt 2's delay window doubles attempt 1's
        assert _backoff_delay(0.5, key, 2) > _backoff_delay(0.5, key, 1)
        assert _backoff_delay(0.0, key, 1) == 0.0

    def test_pool_crash_retry_records_backoff(self):
        records = run_tasks(
            make_tasks(["bad-1", "a"]),
            jobs=2,
            executor=crash_on_bad,
            max_retries=1,
            retry_backoff=0.02,
        )
        by_instance = {r.instance: r for r in records}
        assert by_instance["bad-1"].status == STATUS_CRASH
        assert by_instance["bad-1"].backoff > 0
        assert by_instance["a"].backoff == 0.0
