"""Cube-and-conquer end-to-end property tests (ISSUE 7 satellite 3).

For random small QBFs — prenex (totally ordered) and tree (partially
ordered) prefixes, both engines — ``run_cube`` with 1..4 workers must
return the same verdict as the sequential reference ``solve``, with and
without constraint sharing, and certified runs must verify.

These tests fork real worker processes; instance counts are kept small.
"""

import random

import pytest

from repro.core.result import Outcome
from repro.core.solver import solve
from repro.cube import run_cube
from repro.generators.random_qbf import random_prenex_qbf, random_tree_qbf


def _decided_instances(make, seeds, want):
    """Random formulas whose sequential verdict is decided, with it."""
    out = []
    for seed in seeds:
        rng = random.Random(seed)
        formula = make(rng)
        reference = solve(formula)
        if reference.outcome is Outcome.UNKNOWN:
            continue
        out.append((seed, formula, reference.outcome))
        if len(out) >= want:
            break
    assert len(out) >= want, "not enough decided random instances"
    return out


PRENEX = _decided_instances(
    lambda rng: random_prenex_qbf(rng, num_blocks=3, block_size=2, num_clauses=10),
    range(40), 3,
)
TREE = _decided_instances(
    lambda rng: random_tree_qbf(rng, depth=3, branching=2, block_size=2),
    range(40), 3,
)


@pytest.mark.parametrize("jobs", [1, 2, 3, 4])
def test_prenex_verdict_matches_sequential(jobs):
    for seed, formula, expected in PRENEX:
        report = run_cube(formula, jobs=jobs, seed=seed, leaf_decisions=50)
        assert report.outcome is expected, (seed, jobs, report.outcome)


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_tree_verdict_matches_sequential(jobs):
    for seed, formula, expected in TREE:
        report = run_cube(formula, jobs=jobs, seed=seed, leaf_decisions=50)
        assert report.outcome is expected, (seed, jobs, report.outcome)


@pytest.mark.parametrize("share", [True, False])
@pytest.mark.parametrize("engine", ["counters", "watched"])
def test_engines_and_sharing_agree(engine, share):
    seed, formula, expected = PRENEX[0]
    report = run_cube(
        formula, jobs=2, seed=seed, engine=engine, share=share, leaf_decisions=50
    )
    assert report.outcome is expected
    if not share:
        assert report.share["exported"] == 0 and report.share["imported"] == 0


@pytest.mark.parametrize("jobs", [1, 2])
def test_certified_runs_verify(jobs):
    for seed, formula, expected in PRENEX[:2] + TREE[:1]:
        report = run_cube(formula, jobs=jobs, seed=seed, certify=True)
        assert report.outcome is expected
        assert report.certificate_status == "verified", report.certificate_status


def test_seed_changes_split_not_verdict():
    seed0, formula, expected = TREE[0]
    for seed in (0, 1, 7):
        report = run_cube(formula, jobs=2, seed=seed, leaf_decisions=50)
        assert report.outcome is expected


def test_budget_exhaustion_reports_unknown_not_wrong():
    seed, formula, expected = PRENEX[0]
    report = run_cube(
        formula, jobs=2, seed=seed, leaf_decisions=1, total_decisions=2,
        max_escalations=0, max_depth=1,
    )
    assert report.outcome in (expected, Outcome.UNKNOWN)


def test_checkpoint_incapable_paradigm_is_refused():
    from repro.core.paradigm import CapabilityError

    _, formula, _ = PRENEX[0]
    for paradigm in ("expansion", "qdll"):
        with pytest.raises(CapabilityError, match="checkpoint"):
            run_cube(formula, jobs=2, paradigm=paradigm)


def test_explicit_search_paradigm_still_runs():
    seed, formula, expected = PRENEX[0]
    report = run_cube(
        formula, jobs=1, seed=seed, leaf_decisions=50, paradigm="search"
    )
    assert report.outcome is expected
