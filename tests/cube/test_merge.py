"""Certificate-merge tests: lifted fragments fold into a checkable proof."""

import random

from repro.certify import MemorySink, ProofLogger, certifying_config, check_certificate
from repro.core.formula import QBF
from repro.core.literals import EXISTS, FORALL
from repro.core.prefix import Prefix
from repro.core.result import Outcome
from repro.core.solver import SolverConfig, solve
from repro.cube.merge import LeafFragment, merge_certificates
from repro.cube.splitter import build_split, cofactor, fold_outcomes
from repro.generators.random_qbf import random_qbf


def _solve_leaf_certified(formula, leaf):
    sub, cmap = cofactor(formula, leaf.path)
    sink = MemorySink()
    result = solve(sub, certifying_config(SolverConfig()), proof=ProofLogger(sink))
    leaf.outcome = result.outcome
    leaf.fragment = LeafFragment(leaf.path, cmap, sink.steps)
    return result


def _merge_and_check(formula, target_leaves=4, seed=0):
    root = build_split(formula, target_leaves=target_leaves, seed=seed)
    for leaf in root.leaves():
        _solve_leaf_certified(formula, leaf)
    report = merge_certificates(root, formula.prefix)
    return root, report, check_certificate(formula, report.sink)


def test_merged_certificate_verifies_false_instance():
    # ∀ y1 ∃ x2 . (y1 ∨ x2)(¬y1 ∨ ¬x2)(y1 ∨ ¬x2)(¬y1 ∨ x2) — FALSE
    prefix = Prefix.linear([(FORALL, (1,)), (EXISTS, (2,))])
    formula = QBF(prefix, [(1, 2), (-1, -2), (1, -2), (-1, 2)])
    root, report, check = _merge_and_check(formula, target_leaves=2)
    assert fold_outcomes(root) is Outcome.FALSE
    assert report.complete
    assert check.status == "verified" and check.outcome == "false"


def test_merged_certificate_verifies_true_instance():
    # ∃ x1 ∀ y2 ∃ z3 . (x1 ∨ z3)(¬y2 ∨ z3 ∨ ¬x1)(y2 ∨ ¬z3 ∨ x1) — TRUE
    prefix = Prefix.linear([(EXISTS, (1,)), (FORALL, (2,)), (EXISTS, (3,))])
    formula = QBF(prefix, [(1, 3), (-2, 3, -1), (2, -3, 1)])
    root, report, check = _merge_and_check(formula, target_leaves=2)
    assert fold_outcomes(root) is Outcome.TRUE
    assert report.complete
    assert check.status == "verified" and check.outcome == "true"


def test_merged_certificates_verify_on_random_instances():
    rng = random.Random(23)
    verified = 0
    for _ in range(15):
        formula = random_qbf(rng)
        root, report, check = _merge_and_check(formula, target_leaves=4, seed=2)
        if fold_outcomes(root) is None:
            continue
        assert report.complete, report.reason
        assert check.status == "verified", check.error
        assert check.outcome == fold_outcomes(root).value
        verified += 1
    assert verified >= 10


def test_missing_fragment_degrades_to_incomplete_not_invalid():
    prefix = Prefix.linear([(FORALL, (1,)), (EXISTS, (2,))])
    formula = QBF(prefix, [(1, 2), (-1, -2), (1, -2), (-1, 2)])
    root = build_split(formula, target_leaves=2)
    leaves = root.leaves()
    for leaf in leaves:
        _solve_leaf_certified(formula, leaf)
    for leaf in leaves:  # lost fragments (e.g. worker crash + retry)
        leaf.fragment = None
    report = merge_certificates(root, formula.prefix)
    assert report.outcome is Outcome.FALSE
    assert not report.complete and "no proof fragment" in report.reason
    check = check_certificate(formula, report.sink)
    # honest partial proof: the checker accepts the steps but the
    # conclusion claims no completeness
    assert check.status != "verified"


def test_undecided_tree_concludes_unknown():
    prefix = Prefix.linear([(FORALL, (1,)), (EXISTS, (2,))])
    formula = QBF(prefix, [(1, 2), (-1, -2), (1, -2), (-1, 2)])
    root = build_split(formula, target_leaves=2)
    report = merge_certificates(root, formula.prefix)
    assert report.outcome is None and not report.complete
    assert report.steps[-1]["outcome"] == "unknown"


def test_fragment_payload_roundtrip():
    frag = LeafFragment((1, -2), ((0, (-1,)), (2, ())), [{"type": "inp", "id": 1}])
    back = LeafFragment.from_payload(frag.to_payload())
    assert back.assumptions == frag.assumptions
    assert back.clause_map == frag.clause_map
    assert back.steps == frag.steps
