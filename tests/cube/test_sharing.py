"""Admission-filter and exchange tests (ISSUE 7 satellite 4).

The contract under test: a shared constraint that violates the receiving
engine's quantifier structure or prefix order is *rejected and logged,
never installed* — and sound traffic passes.
"""

import logging
import queue

from repro.core.formula import QBF
from repro.core.literals import EXISTS, FORALL
from repro.core.prefix import Prefix
from repro.cube.sharing import AdmissionFilter, Exchange
from repro.cube.splitter import cofactor


def _orig():
    # ∃ x1 x2 ∀ y3 ∃ z4
    prefix = Prefix.linear([(EXISTS, (1, 2)), (FORALL, (3,)), (EXISTS, (4,))])
    return QBF(prefix, [(1, 3, 4), (-1, 2), (-2, -3, 4)])


def test_admits_sound_clause_and_cube():
    f = _orig()
    filt = AdmissionFilter(f)
    assert filt.admit(False, (-1, 2)) == (-1, 2)
    assert filt.admit(True, (1, 2, 4)) == (1, 2, 4)
    assert filt.admitted == 2
    assert not filt.rejected


def test_rejects_quantifier_mismatch_and_logs(caplog):
    f = _orig()
    # receiver believes y3 is existential — a foreign/mangled prefix
    mangled = Prefix.linear([(EXISTS, (1, 2)), (EXISTS, (3,)), (EXISTS, (4,))])
    filt = AdmissionFilter(f, receiver_prefix=mangled, assumptions=())
    with caplog.at_level(logging.INFO, logger="repro.cube"):
        assert filt.admit(False, (2, 3)) is None
    assert filt.rejected["quantifier-mismatch"] == 1
    assert filt.admitted == 0
    assert any("quantifier-mismatch" in r.message for r in caplog.records)


def test_rejects_prefix_order_violation_and_logs(caplog):
    f = _orig()
    # receiver orders z4 *before* y3: prec(y3, z4) flips
    mangled = Prefix.linear([(EXISTS, (1, 2)), (EXISTS, (4,)), (FORALL, (3,))])
    filt = AdmissionFilter(f, receiver_prefix=mangled, assumptions=())
    with caplog.at_level(logging.INFO, logger="repro.cube"):
        assert filt.admit(False, (3, 4)) is None
    assert filt.rejected["prefix-order"] == 1
    assert any("prefix-order" in r.message for r in caplog.records)


def test_rejects_malformed_tautology_unbound_oversized():
    f = _orig()
    filt = AdmissionFilter(f, max_lits=2)
    assert filt.admit(False, (1, 0)) is None
    assert filt.admit(False, (1, "2")) is None
    assert filt.admit(False, (1, -1)) is None
    assert filt.admit(False, (1, 99)) is None
    assert filt.admit(False, (1, 2, 4)) is None  # > max_lits
    assert filt.rejected["malformed"] == 2
    assert filt.rejected["tautology"] == 1
    assert filt.rejected["unbound"] == 1
    assert filt.rejected["oversized"] == 1
    assert filt.admitted == 0


def test_rejects_cubes_on_incremental_path():
    f = _orig()
    filt = AdmissionFilter(f, cubes_ok=False)
    assert filt.admit(True, (1, 2, 4)) is None
    assert filt.rejected["cube-on-original-path"] == 1
    assert filt.admit(False, (-1, 2)) == (-1, 2)  # clauses still welcome


def test_strips_receiver_assumptions_on_cofactor_path():
    f = _orig()
    leaf, _ = cofactor(f, (1,))
    filt = AdmissionFilter(f, receiver_prefix=leaf.prefix, assumptions=(1,))
    # clause containing the assumption is satisfied locally: drop entirely
    assert filt.admit(False, (1, 3)) is None
    assert filt.rejected["assumption-subsumed"] == 1
    # clause containing its negation: strip the dead literal
    assert filt.admit(False, (-1, 2)) == (2,)
    # cube implied literal strips; contradicting cube is dead here
    assert filt.admit(True, (1, 2, 4)) == (2, 4)
    assert filt.admit(True, (-1, 4)) is None


def test_exchange_never_installs_rejected_traffic(caplog):
    f = _orig()
    mangled = Prefix.linear([(EXISTS, (1, 2)), (EXISTS, (3,)), (EXISTS, (4,))])
    filt = AdmissionFilter(f, receiver_prefix=mangled, assumptions=())
    bad = (99, False, (2, 3))   # quantifier mismatch under the receiver
    good = (99, False, (1, 2))
    ours = (7, False, (1, 4))   # own traffic must be skipped too
    ex = Exchange(7, (), None, None, filt, preload=[bad, good, ours])
    with caplog.at_level(logging.INFO, logger="repro.cube"):
        installed = list(ex.drain())
    assert installed == [(False, (1, 2))]
    assert ex.imported == 1
    assert filt.rejected["quantifier-mismatch"] == 1
    assert any("rejected shared constraint" in r.message for r in caplog.records)


def test_exchange_lift_clause_and_cube():
    f = _orig()
    filt = AdmissionFilter(f)
    out = queue.Queue(maxsize=4)
    ex = Exchange(0, (1, -2), out, None, filt)
    ex.on_learned(False, (3, 4))       # clause: weaken by ¬A
    ex.on_learned(True, (4,))          # cube: strengthen by A
    ex.on_learned(False, (3, 4))       # duplicate: dropped
    items = [out.get_nowait() for _ in range(out.qsize())]
    lifted = {(cube, frozenset(lits)) for _, cube, lits in items}
    assert (False, frozenset((-1, 2, 3, 4))) in lifted
    assert (True, frozenset((1, -2, 4))) in lifted
    assert len(items) == 2 and ex.exported == 2
    # a clause mentioning an assumption positively lifts to a tautology
    ex.on_learned(False, (1, 3))
    assert ex.exported == 2


def test_exchange_unlifted_cubes_and_full_outbox():
    f = _orig()
    filt = AdmissionFilter(f)
    out = queue.Queue(maxsize=1)
    ex = Exchange(0, (1,), out, None, filt, lift_cubes=False)
    ex.on_learned(True, (2, 4))
    assert out.get_nowait() == (0, True, (2, 4))  # exported verbatim
    ex.on_learned(False, (3, 4))
    ex.on_learned(False, (2, 3))  # outbox full: dropped, counted
    assert ex.export_dropped == 1
