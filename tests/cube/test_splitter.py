"""Splitter unit tests: cofactoring, ranking, tree building, verdict fold."""

import random

import pytest

from repro.core.formula import QBF
from repro.core.literals import EXISTS, FORALL
from repro.core.prefix import Prefix
from repro.core.result import Outcome
from repro.core.solver import solve
from repro.cube.splitter import (
    SplitNode,
    build_split,
    cofactor,
    fold_outcomes,
    rank_split_vars,
    split_leaf,
)
from repro.generators.random_qbf import random_qbf


def _phi():
    # ∃ x1 x2 ∀ y3 ∃ z4 . (x1 ∨ y3 ∨ z4)(¬x1 ∨ x2)(¬x2 ∨ ¬y3 ∨ z4)
    prefix = Prefix.linear([(EXISTS, (1, 2)), (FORALL, (3,)), (EXISTS, (4,))])
    return QBF(prefix, [(1, 3, 4), (-1, 2), (-2, -3, 4)])


def test_cofactor_drops_satisfied_and_carries_falsified():
    formula = _phi()
    leaf, cmap = cofactor(formula, (1,))
    # clause 0 satisfied by x1; clauses 1 and 2 survive, clause 1 loses ¬x1
    assert [c.lits for c in leaf.clauses] == [(2,), (-2, -3, 4)]
    assert cmap == ((1, (-1,)), (2, ()))
    assert 1 not in leaf.prefix.variables


def test_cofactor_negative_literal_and_contradiction():
    formula = _phi()
    leaf, cmap = cofactor(formula, (-1,))
    assert [c.lits for c in leaf.clauses] == [(3, 4), (-2, -3, 4)]
    assert cmap[0] == (0, (1,))
    with pytest.raises(ValueError):
        cofactor(formula, (1, -1))


def test_cofactor_preserves_prec_among_survivors():
    rng = random.Random(7)
    for _ in range(20):
        formula = random_qbf(rng)
        top = formula.prefix.top_variables()
        if not top:
            continue
        v = min(top)
        leaf, _ = cofactor(formula, (v,))
        for a in leaf.prefix.variables:
            for b in leaf.prefix.variables:
                assert leaf.prefix.prec(a, b) == formula.prefix.prec(a, b)
            # no survivor preceded the split variable (it was level-1)
            assert not formula.prefix.prec(a, v)


def test_rank_split_vars_only_top_and_seed_deterministic():
    formula = _phi()
    ranked = rank_split_vars(formula, seed=3)
    assert set(ranked) == {1, 2}  # only the top block is branchable
    assert ranked == rank_split_vars(formula, seed=3)
    # busiest variable first: x1 occurs twice, x2 twice — a tie, broken by
    # the seeded shuffle, so *some* seed must flip the order
    orders = {tuple(rank_split_vars(formula, seed=s)) for s in range(16)}
    assert all(set(o) == {1, 2} for o in orders)


def test_split_leaf_and_build_split_shape():
    formula = _phi()
    root = build_split(formula, target_leaves=4, seed=0)
    leaves = root.leaves()
    assert len(leaves) >= 4
    for leaf in leaves:
        assert leaf.is_leaf and leaf.path
        # every path is a consistent cube over branchable variables
        assert len({abs(l) for l in leaf.path}) == len(leaf.path)
    # internal nodes know their quantifier
    assert root.var is not None and root.quant in (EXISTS, FORALL)


def test_split_leaf_without_branchables_returns_false():
    prefix = Prefix.linear([(FORALL, (1,)), (EXISTS, (2,))])
    formula = QBF(prefix, [(1, 2), (-1, -2)])
    node = SplitNode((1,))
    leaf, _ = cofactor(formula, (1,))
    # after removing the only top variable, the next block is promoted, so
    # a branchable remains; exhaust it too
    assert split_leaf(node, leaf, seed=0)
    inner = node.pos
    sub, _ = cofactor(formula, inner.path)
    if sub.prefix.top_variables():
        assert split_leaf(inner, sub, seed=0)


def test_fold_outcomes_existential_and_universal():
    for quant, win in ((EXISTS, Outcome.TRUE), (FORALL, Outcome.FALSE)):
        lose = Outcome.FALSE if win is Outcome.TRUE else Outcome.TRUE
        root = SplitNode(())
        root.var, root.quant = 1, quant
        root.pos = SplitNode((1,), parent=root)
        root.neg = SplitNode((-1,), parent=root)
        assert fold_outcomes(root) is None
        root.pos.outcome = lose
        assert fold_outcomes(root) is None  # sibling still open
        root.neg.outcome = win
        assert fold_outcomes(root) is win  # one winning branch settles it
        root.neg.outcome = lose
        assert fold_outcomes(root) is lose  # both losing branches settle it
        root.neg.outcome = Outcome.UNKNOWN
        assert fold_outcomes(root) is None  # UNKNOWN never decides


def test_split_verdict_equals_direct_solve():
    rng = random.Random(11)
    checked = 0
    for _ in range(12):
        formula = random_qbf(rng)
        reference = solve(formula)
        if reference.outcome is Outcome.UNKNOWN:
            continue
        root = build_split(formula, target_leaves=4, seed=1)
        for leaf in root.leaves():
            sub, _ = cofactor(formula, leaf.path)
            leaf.outcome = solve(sub).outcome
        assert fold_outcomes(root) is reference.outcome
        checked += 1
    assert checked >= 6
