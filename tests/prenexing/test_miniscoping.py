"""Tests for Section VII-D scope minimization."""

import random

import pytest

from repro.core.expansion import evaluate
from repro.core.formula import QBF, paper_example
from repro.core.literals import EXISTS, FORALL
from repro.core.solver import solve
from repro.generators.random_qbf import random_prenex_qbf, random_tree_qbf
from repro.prenexing.miniscoping import miniscope, ordered_pairs, structure_ratio
from repro.prenexing.strategies import prenex


class TestMiniscope:
    def test_rejects_non_prenex(self):
        with pytest.raises(ValueError):
            miniscope(paper_example())

    def test_recovers_tree_from_prenexed_paper_example(self):
        """Prenexing equation (1) and miniscoping back frees y1/y2 again."""
        original = paper_example()
        flat = prenex(original, "eu_au")
        tree = miniscope(flat)
        assert not tree.is_prenex
        # y1 (2) and x3,x4 (6,7) live on different branches again.
        assert not tree.prefix.prec(2, 6)
        assert not tree.prefix.prec(5, 3)
        assert solve(tree).value == solve(flat).value

    def test_unused_variable_dropped(self):
        phi = QBF.prenex([(EXISTS, [1, 2])], [(1,)])
        tree = miniscope(phi)
        assert 2 not in tree.prefix

    def test_existential_single_clause_scope_deleted(self):
        # ∀y ∃x (x ∨ y): the inner clause is satisfiable by x alone.
        phi = QBF.prenex([(FORALL, [1]), (EXISTS, [2])], [(1, 2)])
        tree = miniscope(phi)
        assert tree.num_clauses == 0
        assert solve(tree).value and solve(phi).value

    def test_universal_single_clause_scope_reduced(self):
        # ∃x ∀y ((x ∨ y) ∧ ¬x): Lemma 3 deletes y from its single clause.
        phi = QBF.prenex([(EXISTS, [1]), (FORALL, [2])], [(1, 2), (-1,)])
        tree = miniscope(phi)
        assert sorted(c.lits for c in tree.clauses) == [(-1,), (1,)]
        assert 2 not in tree.prefix
        assert not solve(tree).value

    def test_cascading_simplification_solves_outright(self):
        # ∃x ∀y (x ∨ y): y is reduced away, then the single clause (x) is
        # satisfiable by x alone — the whole matrix disappears.
        phi = QBF.prenex([(EXISTS, [1]), (FORALL, [2])], [(1, 2)])
        tree = miniscope(phi)
        assert tree.num_clauses == 0
        assert solve(tree).value and solve(phi).value

    def test_disjoint_blocks_split(self):
        # ∃x1 x2 ∀y3 y4 ∃x5 x6 with two independent halves.
        phi = QBF.prenex(
            [(EXISTS, [1, 2]), (FORALL, [3, 4]), (EXISTS, [5, 6])],
            [(1, 3, 5), (-1, 3, -5), (2, 4, 6), (-2, -4, 6), (1, -3, 5), (2, -4, -6)],
        )
        tree = miniscope(phi)
        assert not tree.prefix.prec(3, 6)
        assert not tree.prefix.prec(4, 5)
        assert tree.prefix.prec(3, 5)
        assert tree.prefix.prec(4, 6)

    @pytest.mark.parametrize("seed", range(20))
    def test_value_preserved_on_random_prenex(self, seed):
        rng = random.Random(seed)
        phi = random_prenex_qbf(
            rng,
            num_blocks=rng.randint(2, 4),
            block_size=rng.randint(1, 3),
            num_clauses=rng.randint(4, 14),
            clause_len=rng.randint(2, 3),
        )
        tree = miniscope(phi)
        assert solve(tree).value == solve(phi).value
        if phi.num_vars <= 20:
            assert evaluate(phi, max_vars=None) == solve(tree).value

    @pytest.mark.parametrize("seed", range(10))
    def test_roundtrip_through_prenexing(self, seed):
        """tree → prenex → miniscope preserves the value throughout."""
        rng = random.Random(400 + seed)
        phi = random_tree_qbf(rng, depth=3, branching=2, block_size=1)
        flat = prenex(phi, "eu_au")
        back = miniscope(flat)
        assert solve(phi).value == solve(back).value

    def test_never_duplicates_variables(self):
        """Rule (20) must not be applied: no variable count increase."""
        rng = random.Random(99)
        for _ in range(10):
            phi = random_prenex_qbf(rng, num_blocks=3, block_size=3, num_clauses=12)
            tree = miniscope(phi)
            assert tree.num_vars <= phi.num_vars


class TestStructureRatio:
    def test_zero_when_nothing_freed(self):
        phi = QBF.prenex(
            [(EXISTS, [1]), (FORALL, [2]), (EXISTS, [3])],
            [(1, 2, 3), (-1, -2, -3)],
        )
        tree = miniscope(phi)
        assert structure_ratio(phi, tree) == 0.0

    def test_positive_when_branches_split(self):
        phi = prenex(paper_example(), "eu_au")
        tree = miniscope(phi)
        ratio = structure_ratio(phi, tree)
        assert ratio > 0.2  # the paper's inclusion threshold

    def test_ordered_pairs_counts_both_directions(self):
        phi = QBF.prenex([(FORALL, [1]), (EXISTS, [2])], [(1, 2)])
        assert ordered_pairs(phi.prefix) == {(2, 1)}

    def test_counts_dropped_variables_as_freed(self):
        phi = QBF.prenex([(EXISTS, [1]), (FORALL, [2])], [(1, 2)])
        tree = miniscope(phi)  # y is reduced away entirely
        assert structure_ratio(phi, tree) == 1.0
