"""Tests for the four prenexing strategies."""

import random

import pytest

from repro.core.expansion import evaluate
from repro.core.formula import QBF, paper_example
from repro.core.literals import EXISTS, FORALL
from repro.core.solver import solve
from repro.generators.random_qbf import random_tree_qbf
from repro.prenexing.strategies import STRATEGIES, prenex, prenex_all, strategy_symbol


class TestPaperExample:
    """Equation (7): the prenex-optimal prefix of equation (1)."""

    def test_eu_au_matches_equation_7(self):
        phi = prenex(paper_example(), "eu_au")
        assert phi.is_prenex
        blocks = phi.prefix.linear_blocks()
        # x0 ≺ y1,y2 ≺ x1,x2,x3,x4  (vars 1 | 2,5 | 3,4,6,7)
        assert [(q, set(vs)) for q, vs in blocks] == [
            (EXISTS, {1}),
            (FORALL, {2, 5}),
            (EXISTS, {3, 4, 6, 7}),
        ]

    def test_prefix_level_is_preserved(self):
        original = paper_example()
        for name in STRATEGIES:
            phi = prenex(original, name)
            assert phi.prefix.prefix_level == original.prefix.prefix_level, name

    def test_matrix_unchanged(self):
        original = paper_example()
        for name in STRATEGIES:
            phi = prenex(original, name)
            assert sorted(c.lits for c in phi.clauses) == sorted(
                c.lits for c in original.clauses
            )

    def test_value_preserved(self):
        for name in STRATEGIES:
            assert not solve(prenex(paper_example(), name)).value


class TestStrategyMechanics:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            prenex(paper_example(), "sideways")

    def test_prenex_input_returned_unchanged(self):
        phi = QBF.prenex([(EXISTS, [1]), (FORALL, [2])], [(1, 2)])
        assert prenex(phi, "eu_au") is phi

    def test_symbols(self):
        assert strategy_symbol("eu_au") == "∃↑∀↑"
        assert strategy_symbol("ed_ad") == "∃↓∀↓"

    def test_prenex_all_has_four_entries(self):
        out = prenex_all(paper_example())
        assert set(out) == set(STRATEGIES)

    def test_strategies_can_differ(self):
        # ∃x ( ∀y1 ∃x1 (…) ∧ ∃x2 (…) ) — x2 placement differs up vs down.
        phi = QBF.tree(
            [
                (
                    EXISTS,
                    (1,),
                    (
                        (FORALL, (2,), ((EXISTS, (3,), ()),)),
                        (EXISTS, (4,), ()),
                    ),
                )
            ],
            [(1, 2, 3), (1, 4)],
        )
        up = prenex(phi, "eu_au").prefix.linear_blocks()
        down = prenex(phi, "ed_ad").prefix.linear_blocks()
        up_slot = next(i for i, (_, vs) in enumerate(up) if 4 in vs)
        down_slot = next(i for i, (_, vs) in enumerate(down) if 4 in vs)
        assert up_slot < down_slot


def _assert_extends_order(original, prenexed):
    po = original.prefix
    to = prenexed.prefix
    for a in po.variables:
        for b in po.variables:
            if a != b and po.prec(a, b):
                assert to.prec(a, b), (a, b)


@pytest.mark.parametrize("name", STRATEGIES)
@pytest.mark.parametrize("seed", range(12))
def test_strategies_extend_order_and_preserve_value(name, seed):
    rng = random.Random(seed * 7 + 3)
    phi = random_tree_qbf(
        rng,
        depth=rng.randint(2, 4),
        branching=2,
        block_size=rng.randint(1, 2),
        clauses_per_scope=2,
        root_quant=rng.choice([EXISTS, FORALL]),
    )
    psi = prenex(phi, name)
    assert psi.is_prenex
    _assert_extends_order(phi, psi)
    # Prenex-optimality: at most one extra alternation level; exactly the
    # original level when the top blocks match the pattern start.
    assert psi.prefix.prefix_level <= phi.prefix.prefix_level + 1
    if phi.num_vars <= 20:
        assert evaluate(phi, max_vars=None) == evaluate(psi, max_vars=None)
    assert solve(phi).value == solve(psi).value


@pytest.mark.parametrize("seed", range(8))
def test_prenex_optimal_when_tops_match(seed):
    rng = random.Random(9000 + seed)
    phi = random_tree_qbf(rng, depth=3, branching=2, block_size=1, root_quant=EXISTS)
    psi = prenex(phi, "eu_au")
    assert psi.prefix.prefix_level == phi.prefix.prefix_level
