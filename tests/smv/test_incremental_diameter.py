"""The stable-id φ_n encoder and the incremental diameter sweep."""

import pytest

from repro.core.solver import solve
from repro.smv.diameter import compute_diameter, diameter_qbf
from repro.smv.incremental import (
    DiameterFamily,
    incremental_diameter,
    scratch_diameter,
)
from repro.smv.models import model_by_name
from repro.smv.reachability import eccentricity


def test_stable_formula_agrees_with_reference_encoder():
    model = model_by_name("counter", 2)
    fam = DiameterFamily(model)
    for n in range(5):
        stable = solve(fam.formula(n))
        reference = solve(diameter_qbf(model, n, "prenex"))
        assert stable.outcome is reference.outcome, n


def test_state_variable_ids_are_stable_across_bounds():
    model = model_by_name("counter", 2)
    fam = DiameterFamily(model)
    fam.formula(0)
    x0_before = list(fam.state_vars("x", 0))
    y0_before = list(fam.state_vars("y", 0))
    fam.formula(3)
    assert fam.state_vars("x", 0) == x0_before
    assert fam.state_vars("y", 0) == y0_before


def test_consecutive_bounds_share_their_clause_core():
    model = model_by_name("dme", 4)
    fam = DiameterFamily(model)
    prev = {c.lits for c in fam.formula(1).clauses}
    cur = {c.lits for c in fam.formula(2).clauses}
    shared = prev & cur
    # everything except the old neg-eq group and the old top clause carries
    assert len(shared) > len(prev) // 2


@pytest.mark.parametrize("family,size", [("counter", 2), ("dme", 4), ("ring", 3)])
def test_incremental_sweep_matches_ground_truth(family, size):
    model = model_by_name(family, size)
    truth = eccentricity(model)
    inc = incremental_diameter(model)
    scratch = scratch_diameter(model)
    reference = compute_diameter(model, "prenex")
    assert inc.diameter == truth
    assert scratch.diameter == truth
    assert reference.diameter == truth
    assert sum(inc.retained_per_bound) > 0  # transfer actually happened


def test_incremental_uses_fewer_decisions_on_bench_family():
    # dme5 is the bench family with the clearest savings; pin it so a
    # retention regression (transfer silently dropping to zero) fails CI.
    model = model_by_name("dme", 5)
    inc = incremental_diameter(model)
    scratch = scratch_diameter(model)
    assert inc.diameter == scratch.diameter == eccentricity(model)
    assert inc.total_decisions < scratch.total_decisions


def test_incremental_sweep_with_certification():
    from repro.certify import INVALID

    model = model_by_name("counter", 2)
    run = incremental_diameter(model, certify=True)
    assert run.diameter == eccentricity(model)
