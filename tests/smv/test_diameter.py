"""End-to-end tests: diameter via QBF == diameter via explicit BFS."""

import pytest

from repro.core.solver import SolverConfig, solve
from repro.prenexing.miniscoping import structure_ratio
from repro.prenexing.strategies import prenex
from repro.smv.diameter import compute_diameter, diameter_formula, diameter_qbf, t_prime
from repro.smv.models import CounterModel, DmeModel, RingModel, SemaphoreModel
from repro.smv.reachability import eccentricity
from repro.formulas.ast import evaluate_closed


class TestEncodingShape:
    def test_tree_form_is_non_prenex(self):
        phi = diameter_qbf(CounterModel(2), 1, form="tree")
        assert not phi.is_prenex

    def test_prenex_form_is_prenex(self):
        phi = diameter_qbf(CounterModel(2), 1, form="prenex")
        assert phi.is_prenex

    def test_same_matrix_size_both_forms(self):
        tree = diameter_qbf(CounterModel(2), 1, form="tree")
        flat = diameter_qbf(CounterModel(2), 1, form="prenex")
        assert tree.num_clauses == flat.num_clauses

    def test_bad_form_rejected(self):
        with pytest.raises(ValueError):
            diameter_qbf(CounterModel(2), 1, form="sideways")

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            diameter_formula(CounterModel(2), -1)

    def test_tree_form_frees_x_y_pairs(self):
        """The x-path existentials and y universals are incomparable in the
        tree but ordered in (16) — the structural property Section VII-C
        credits for the speedups."""
        tree = diameter_qbf(CounterModel(2), 1, form="tree")
        flat = diameter_qbf(CounterModel(2), 1, form="prenex")
        assert structure_ratio(flat, tree) > 0.2


class TestPhiSemantics:
    """φ_n true ⇔ n < d (equation (14)'s distinctive property)."""

    @pytest.mark.parametrize("model", [CounterModel(2), DmeModel(3), RingModel(2)])
    def test_phi_truth_table_via_solver(self, model):
        d = eccentricity(model)
        for n in range(d + 2):
            expected = n < d
            assert solve(diameter_qbf(model, n, "tree")).value == expected, n
            assert solve(diameter_qbf(model, n, "prenex")).value == expected, n

    def test_phi_truth_table_via_ast_oracle_tiny(self):
        """Independent check on the smallest instance the exponential AST
        oracle can afford (counter<1>, d = 1)."""
        model = CounterModel(1)
        d = eccentricity(model)
        assert d == 1
        for n in range(3):
            expected = n < d
            assert evaluate_closed(diameter_formula(model, n, "tree")) == expected
            assert evaluate_closed(diameter_formula(model, n, "prenex")) == expected

    def test_t_prime_adds_initial_self_loop(self):
        model = CounterModel(2)
        s = [1, 2]
        t = [3, 4]
        f = t_prime(model, s, t)
        env = {1: False, 2: False, 3: False, 4: False}  # init -> init self loop
        assert evaluate_closed(f, env)
        env = {1: True, 2: False, 3: True, 4: False}  # non-init self loop: no
        assert not evaluate_closed(f, env)


class TestComputeDiameter:
    @pytest.mark.parametrize("n", [1, 2])
    def test_counter_diameter_matches_bfs(self, n):
        model = CounterModel(n)
        run = compute_diameter(model, form="tree")
        assert run.diameter == eccentricity(model)

    def test_prenex_form_agrees(self):
        model = CounterModel(2)
        tree_run = compute_diameter(model, form="tree")
        prenex_run = compute_diameter(model, form="prenex")
        assert tree_run.diameter == prenex_run.diameter == 3

    def test_dme_diameter(self):
        model = DmeModel(3)
        assert compute_diameter(model, form="tree").diameter == 2

    def test_semaphore_diameter(self):
        model = SemaphoreModel(2)
        run = compute_diameter(model, form="tree")
        assert run.diameter == eccentricity(model)

    def test_ring_diameter(self):
        model = RingModel(2)
        run = compute_diameter(model, form="tree")
        assert run.diameter == eccentricity(model)

    def test_budget_abort_reports_timeout(self):
        run = compute_diameter(
            CounterModel(2),
            form="tree",
            config=SolverConfig(max_decisions=1),
        )
        assert run.timed_out
        assert run.diameter is None

    def test_solving_via_explicit_strategies_matches(self):
        """Prenexing the tree form with ∃↑∀↑ is equivalent to (16)."""
        model = CounterModel(2)
        for n in (0, 2, 3):
            tree = diameter_qbf(model, n, form="tree")
            flat = prenex(tree, "eu_au")
            assert solve(flat).value == solve(tree).value
