"""The Section VII-C worked example: goods under prefixes (18) vs (19).

The paper computes, for the 2-bit circuit with I = ¬s1∧¬s2 and
T = ¬(¬s1∧¬s2∧s'1∧s'2) at n = 1, the learned goods {y0_1} (tree prefix
(18)) versus {x0_1, x0_2, x1_1, x1_2, y0_1} (total order (19)). These tests
verify the reduction asymmetry both on the paper's literal prefixes and on
the library's own encoding of that circuit.
"""

from typing import Sequence

import pytest

from repro.core.constraints import existential_reduce
from repro.core.literals import EXISTS, FORALL
from repro.core.prefix import Prefix
from repro.core.solver import QdpllSolver, SolverConfig
from repro.formulas.ast import And, Formula, Not, Var, conj
from repro.smv.diameter import compute_diameter, diameter_qbf
from repro.smv.models import SymbolicModel
from repro.smv.reachability import eccentricity


def prefix_18() -> Prefix:
    """x2_1, x2_2 ≺ y0..y1 ≺ x, with x0/x1 unordered (equation (18))."""
    return Prefix.tree(
        [
            (EXISTS, (5, 6), ((FORALL, (7, 8, 9, 10), ((EXISTS, (11,), ()),)),)),
            (EXISTS, (1, 2, 3, 4), ()),
        ]
    )


def prefix_19() -> Prefix:
    """x0..x2 ≺ y0..y1 ≺ x (equation (19))."""
    return Prefix.linear(
        [(EXISTS, (1, 2, 3, 4, 5, 6)), (FORALL, (7, 8, 9, 10)), (EXISTS, (11,))]
    )


GOOD = (1, 2, 3, 4, 7)  # {x0_1, x0_2, x1_1, x1_2, y0_1}


def test_good_reduces_to_y_under_tree():
    assert existential_reduce(GOOD, prefix_18()) == (7,)


def test_good_keeps_everything_under_total_order():
    assert existential_reduce(GOOD, prefix_19()) == GOOD


def test_spo_subset_sto():
    """The paper's conclusion: S_po ⊆ S_to, hence more pruning."""
    spo = set(existential_reduce(GOOD, prefix_18()))
    sto = set(existential_reduce(GOOD, prefix_19()))
    assert spo < sto


class PaperTwoBitModel(SymbolicModel):
    """The Section VII-C circuit: I = ¬s1∧¬s2, T = ¬(¬s1∧¬s2∧s'1∧s'2)."""

    num_bits = 2
    name = "vii-c"

    def init(self, s: Sequence[int]) -> Formula:
        return conj((Not(Var(s[0])), Not(Var(s[1]))))

    def trans(self, s: Sequence[int], t: Sequence[int]) -> Formula:
        return Not(And((Not(Var(s[0])), Not(Var(s[1])), Var(t[0]), Var(t[1]))))


def test_paper_circuit_diameter_is_2():
    assert eccentricity(PaperTwoBitModel()) == 2


def test_paper_circuit_qbf_pipeline():
    run = compute_diameter(PaperTwoBitModel(), form="tree")
    assert run.diameter == 2
    run = compute_diameter(PaperTwoBitModel(), form="prenex")
    assert run.diameter == 2


def test_learned_goods_shorter_under_tree_on_paper_circuit():
    """End-to-end: the engine's learned cubes average shorter in PO."""
    model = PaperTwoBitModel()
    tree = diameter_qbf(model, 1, "tree")
    flat = diameter_qbf(model, 1, "prenex")
    po = QdpllSolver(tree, SolverConfig())
    po.solve()
    to = QdpllSolver(flat, SolverConfig())
    to.solve()
    if po.stats.learned_cubes and to.stats.learned_cubes:
        po_avg = po.stats.learned_cube_lits / po.stats.learned_cubes
        to_avg = to.stats.learned_cube_lits / to.stats.learned_cubes
        assert po_avg <= to_avg
