"""The smv.model / smv.models merge: one module, one set of objects."""

import repro.smv.model as old
import repro.smv.models as new


def test_old_import_path_resolves_to_the_same_objects():
    # model.py is a deprecation shim over models.py: both import paths
    # must hand back the *identical* objects, so isinstance checks and
    # subclass registrations done through either path agree.
    assert old.SymbolicModel is new.SymbolicModel
    assert old.equal_states is new.equal_states
    assert old.unchanged is new.unchanged
    assert old.at_most_one is new.at_most_one


def test_families_subclass_the_shared_base():
    assert issubclass(new.CounterModel, old.SymbolicModel)
    assert isinstance(new.model_by_name("counter", 2), old.SymbolicModel)
