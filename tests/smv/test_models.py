"""Tests for the model families against explicit-state ground truth."""

import pytest

from repro.smv.models import (
    CounterModel,
    DmeModel,
    RingModel,
    SemaphoreModel,
    model_by_name,
)
from repro.smv.reachability import (
    distances,
    eccentricity,
    initial_states,
    num_reachable,
    successor_map,
)


class TestCounter:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_eccentricity_is_2n_minus_1(self, n):
        assert eccentricity(CounterModel(n)) == 2**n - 1

    def test_all_states_reachable(self):
        assert num_reachable(CounterModel(3)) == 8

    def test_single_initial_state(self):
        inits = initial_states(CounterModel(3))
        assert inits == [(False, False, False)]

    def test_deterministic_increment(self):
        adj = successor_map(CounterModel(2))
        # 00 -> 10 (bit0 is LSB), 10 -> 01, 01 -> 11, 11 -> 00
        assert adj[(False, False)] == [(True, False)]
        assert adj[(True, False)] == [(False, True)]
        assert adj[(True, True)] == [(False, False)]

    def test_bad_size(self):
        with pytest.raises(ValueError):
            CounterModel(0)


class TestRing:
    def test_one_gate_updates_per_step(self):
        adj = successor_map(RingModel(3))
        for s, succs in adj.items():
            for t in succs:
                flipped = sum(1 for a, b in zip(s, t) if a != b)
                assert flipped <= 1

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_eccentricity_positive_and_bounded(self, n):
        ecc = eccentricity(RingModel(n))
        assert 1 <= ecc <= 2**n

    def test_bad_size(self):
        with pytest.raises(ValueError):
            RingModel(1)


class TestDme:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_eccentricity_grows_linearly(self, n):
        assert eccentricity(DmeModel(n)) == n - 1

    def test_one_hot_invariant(self):
        dist = distances(DmeModel(4))
        for state in dist:
            assert sum(state) == 1

    def test_token_holds_or_passes(self):
        adj = successor_map(DmeModel(3))
        token0 = (True, False, False)
        assert sorted(adj[token0]) == sorted([token0, (False, True, False)])


class TestSemaphore:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_constant_eccentricity(self, n):
        """The defining property of the family: diameter does not grow."""
        assert eccentricity(SemaphoreModel(n)) == eccentricity(SemaphoreModel(1)) or n == 1

    def test_eccentricity_value_stable_across_sizes(self):
        values = {n: eccentricity(SemaphoreModel(n)) for n in (1, 2, 3)}
        assert values[2] == values[3]

    def test_mutual_exclusion_invariant(self):
        dist = distances(SemaphoreModel(3))
        for state in dist:
            criticals = sum(1 for i in range(3) if state[2 * i + 1])
            assert criticals <= 1

    def test_critical_implies_trying(self):
        dist = distances(SemaphoreModel(2))
        for state in dist:
            for i in range(2):
                if state[2 * i + 1]:
                    assert state[2 * i]


class TestFactory:
    def test_model_by_name(self):
        assert model_by_name("counter", 3).name == "counter3"
        assert model_by_name("semaphore", 2).num_bits == 4

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            model_by_name("toaster", 2)
