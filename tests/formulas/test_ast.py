"""Tests for the circuit-formula AST."""

import pytest

from repro.formulas.ast import (
    FALSE,
    TRUE,
    And,
    Const,
    Exists,
    Forall,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    Xor,
    all_vars,
    conj,
    disj,
    evaluate_closed,
    free_vars,
    is_quantifier_free,
    lit,
    nnf,
    rename,
    substitute,
)


class TestConstruction:
    def test_operator_sugar(self):
        x, y = Var(1), Var(2)
        assert (x & y) == And((x, y))
        assert (x | y) == Or((x, y))
        assert ~x == Not(x)
        assert (x >> y) == Implies(x, y)
        assert x.iff(y) == Iff(x, y)

    def test_var_must_be_positive(self):
        with pytest.raises(ValueError):
            Var(0)

    def test_quantified_var_must_be_positive(self):
        with pytest.raises(ValueError):
            Exists([0], TRUE)

    def test_equality_and_hash(self):
        assert Var(3) == Var(3)
        assert hash(Var(3)) == hash(Var(3))
        assert Var(3) != Var(4)
        assert And((Var(1),)) != Or((Var(1),))

    def test_repr_smoke(self):
        f = Forall([2], Var(1) | ~Var(2))
        assert "∀" in repr(f) and "∨" in repr(f)


class TestHelpers:
    def test_conj_folds_constants(self):
        assert conj([TRUE, Var(1)]) == Var(1)
        assert conj([FALSE, Var(1)]) == FALSE
        assert conj([]) == TRUE

    def test_disj_folds_constants(self):
        assert disj([FALSE, Var(1)]) == Var(1)
        assert disj([TRUE, Var(1)]) == TRUE
        assert disj([]) == FALSE

    def test_conj_flattens(self):
        f = conj([And((Var(1), Var(2))), Var(3)])
        assert f == And((Var(1), Var(2), Var(3)))

    def test_lit(self):
        assert lit(3, True) == Var(3)
        assert lit(3, False) == Not(Var(3))


class TestVariables:
    def test_free_vars(self):
        f = Exists([1], Var(1) & Var(2))
        assert free_vars(f) == frozenset({2})

    def test_all_vars(self):
        f = Exists([1], Var(1) & Var(2))
        assert all_vars(f) == frozenset({1, 2})

    def test_is_quantifier_free(self):
        assert is_quantifier_free(Var(1) & ~Var(2))
        assert not is_quantifier_free(Forall([1], Var(1)))

    def test_rename(self):
        f = Exists([1], Var(1) & Var(2))
        g = rename(f, {1: 10, 2: 20})
        assert g == Exists([10], Var(10) & Var(20))


class TestSubstitute:
    def test_substitute_folds(self):
        f = (Var(1) & Var(2)) | Var(3)
        assert substitute(f, {1: True, 2: True}) == TRUE
        assert substitute(f, {1: False}) == Var(3)

    def test_substitute_respects_binding(self):
        f = Exists([1], Var(1) & Var(2))
        g = substitute(f, {1: False, 2: True})
        assert g == Exists([1], Var(1))

    def test_substitute_iff_xor(self):
        assert substitute(Iff(Var(1), Var(2)), {1: True, 2: True}) == TRUE
        assert substitute(Xor(Var(1), Var(2)), {1: True, 2: True}) == FALSE


class TestNnf:
    def test_pushes_negation_through_and(self):
        f = nnf(~(Var(1) & Var(2)))
        assert f == Or((Not(Var(1)), Not(Var(2))))

    def test_pushes_negation_through_quantifiers(self):
        f = nnf(~Forall([1], Var(1)))
        assert f == Exists((1,), Not(Var(1)))
        g = nnf(~Exists([1], Var(1)))
        assert g == Forall((1,), Not(Var(1)))

    def test_expands_implies(self):
        assert nnf(Var(1) >> Var(2)) == Or((Not(Var(1)), Var(2)))

    def test_expands_iff(self):
        f = nnf(Iff(Var(1), Var(2)))
        assert evaluate_closed(f, {1: True, 2: True})
        assert not evaluate_closed(f, {1: True, 2: False})

    def test_xor_is_negated_iff(self):
        f = nnf(Xor(Var(1), Var(2)))
        assert not evaluate_closed(f, {1: True, 2: True})
        assert evaluate_closed(f, {1: False, 2: True})

    def test_double_negation(self):
        assert nnf(~~Var(1)) == Var(1)


class TestEvaluateClosed:
    def test_simple_quantified(self):
        # ∀y ∃x (x ≡ y)
        f = Forall([1], Exists([2], Iff(Var(2), Var(1))))
        assert evaluate_closed(f)

    def test_order_matters(self):
        f = Exists([2], Forall([1], Iff(Var(2), Var(1))))
        assert not evaluate_closed(f)

    def test_free_vars_from_assignment(self):
        assert evaluate_closed(Var(1) >> Var(2), {1: False, 2: False})

    def test_nested_shadowing(self):
        # ∃x (x ∧ ∀x x) — inner ∀x shadows: body is false.
        f = Exists([1], Var(1) & Forall([1], Var(1)))
        assert not evaluate_closed(f)
