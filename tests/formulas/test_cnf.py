"""Tests for the circuit-to-QBF conversion, validated against two oracles."""

import random

import pytest

from repro.core.expansion import evaluate
from repro.core.literals import EXISTS, FORALL
from repro.core.solver import solve
from repro.formulas.ast import (
    FALSE,
    TRUE,
    And,
    Exists,
    Forall,
    Iff,
    Not,
    Or,
    Var,
    evaluate_closed,
)
from repro.formulas.cnf import to_qbf


class TestBasics:
    def test_constant_true(self):
        phi = to_qbf(TRUE)
        assert phi.num_clauses == 0
        assert solve(phi).value

    def test_constant_false(self):
        phi = to_qbf(FALSE)
        assert not solve(phi).value

    def test_single_literal(self):
        phi = to_qbf(Var(1))
        assert phi.prefix.quant(1) is EXISTS  # free var closed existentially
        assert solve(phi).value

    def test_simple_conjunction_has_no_aux(self):
        phi = to_qbf(Var(1) & ~Var(2))
        assert phi.num_vars == 2
        assert sorted(c.lits for c in phi.clauses) == [(-2,), (1,)]

    def test_flat_disjunction_has_no_aux(self):
        phi = to_qbf(Var(1) | ~Var(2))
        assert phi.num_vars == 2
        assert phi.clauses[0].lits == (1, -2)

    def test_or_of_ands_introduces_aux(self):
        f = (Var(1) & Var(2)) | (Var(3) & Var(4))
        phi = to_qbf(f)
        assert phi.num_vars > 4
        assert solve(phi).value


class TestQuantifierStructure:
    def test_conjunction_of_scopes_becomes_tree(self):
        # ∃x1 (∀y2 (x1∨y2)) ∧ (∀y3 (x1∨¬y3)) — two universal branches.
        f = Exists(
            [1],
            And(
                (
                    Forall([2], Var(1) | Var(2)),
                    Forall([3], Var(1) | ~Var(3)),
                )
            ),
        )
        phi = to_qbf(f)
        assert not phi.is_prenex
        assert not phi.prefix.prec(2, 3) and not phi.prefix.prec(3, 2)
        assert phi.prefix.prec(1, 2) and phi.prefix.prec(1, 3)

    def test_aux_vars_are_innermost_existential(self):
        # ∀y ¬(y ∧ x): the aux definition variable must sit below y.
        f = Forall([2], Not(And((Var(2), Var(1)))))
        phi = to_qbf(f)
        aux = [v for v in phi.prefix.variables if v not in (1, 2)]
        for a in aux:
            assert phi.prefix.quant(a) is EXISTS

    def test_disjunction_of_quantified_parts_is_prenexed(self):
        # (∃x1 x1) ∨ (∀y2 y2): semantically true.
        f = Or((Exists([1], Var(1)), Forall([2], Var(2))))
        phi = to_qbf(f)
        assert solve(phi).value == evaluate_closed(f)

    def test_variable_capture_is_avoided(self):
        # Same variable bound twice in different scopes.
        f = And((Exists([1], Var(1)), Forall([1], Or((Var(1), Not(Var(1)))))))
        phi = to_qbf(f)
        assert solve(phi).value


def _random_circuit(rng, vars_pool, depth):
    if depth == 0 or rng.random() < 0.3:
        v = rng.choice(vars_pool)
        return Var(v) if rng.random() < 0.5 else Not(Var(v))
    kind = rng.randrange(4)
    if kind == 0:
        return And(tuple(_random_circuit(rng, vars_pool, depth - 1) for _ in range(2)))
    if kind == 1:
        return Or(tuple(_random_circuit(rng, vars_pool, depth - 1) for _ in range(2)))
    if kind == 2:
        return Not(_random_circuit(rng, vars_pool, depth - 1))
    return Iff(
        _random_circuit(rng, vars_pool, depth - 1),
        _random_circuit(rng, vars_pool, depth - 1),
    )


def _random_quantified(rng, seed_vars=6, depth=3):
    pool = list(range(1, seed_vars + 1))
    body = _random_circuit(rng, pool, depth)
    rng.shuffle(pool)
    cut1, cut2 = sorted((rng.randint(0, seed_vars), rng.randint(0, seed_vars)))
    inner, mid, outer = pool[:cut1], pool[cut1:cut2], pool[cut2:]
    f = body
    if inner:
        f = Exists(inner, f)
    if mid:
        f = Forall(mid, f)
    if outer:
        f = Exists(outer, f)
    return f


@pytest.mark.parametrize("seed", range(40))
def test_to_qbf_agrees_with_semantic_oracle(seed):
    """to_qbf + QDPLL must agree with direct AST expansion."""
    rng = random.Random(seed)
    f = _random_quantified(rng)
    expected = evaluate_closed(f)
    phi = to_qbf(f)
    assert solve(phi).value == expected
    if phi.num_vars <= 24:
        assert evaluate(phi, max_vars=None) == expected


@pytest.mark.parametrize("seed", range(15))
def test_to_qbf_tree_structure_formulas(seed):
    """Conjunctions of independently quantified parts (paper-style shapes)."""
    rng = random.Random(500 + seed)
    parts = []
    base = 1
    for _ in range(rng.randint(2, 3)):
        pool = list(range(base, base + 3))
        base += 3
        body = _random_circuit(rng, pool, 2)
        parts.append(Forall([pool[0]], Exists(pool[1:], body)))
    f = And(tuple(parts))
    expected = evaluate_closed(f)
    phi = to_qbf(f)
    assert solve(phi).value == expected
