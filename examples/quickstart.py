"""Quickstart: build, solve and inspect QBFs with the repro library.

Run:  python examples/quickstart.py
"""

from repro import EXISTS, FORALL, Outcome, Prefix, QBF, SolverConfig, solve
from repro.io import qtree


def prenex_basics() -> None:
    """Classical prenex QBFs: the prefix is a total order."""
    # ∀y ∃x . (x ∨ ¬y) ∧ (¬x ∨ y)   — "x must copy y": true.
    copy_game = QBF.prenex(
        [(FORALL, [1]), (EXISTS, [2])],
        [(2, -1), (-2, 1)],
    )
    result = solve(copy_game)
    print("∀y ∃x (x ≡ y)      ->", result.outcome)

    # Swap the quantifiers and the game becomes unwinnable.
    fixed_first = QBF.prenex(
        [(EXISTS, [2]), (FORALL, [1])],
        [(2, -1), (-2, 1)],
    )
    print("∃x ∀y (x ≡ y)      ->", solve(fixed_first).outcome)


def non_prenex_basics() -> None:
    """Quantifier trees: independently quantified conjuncts stay independent."""
    # ∃x ( ∀y1 ∃z1 (y1 ≡ z1) ∧ ∀y2 ∃z2 (y2 ≢ z2) ∧ x )
    phi = QBF.tree(
        [
            (
                EXISTS,
                (1,),
                (
                    (FORALL, (2,), ((EXISTS, (3,), ()),)),
                    (FORALL, (4,), ((EXISTS, (5,), ()),)),
                ),
            )
        ],
        [(1,), (2, -3), (-2, 3), (4, 5), (-4, -5)],
    )
    print("\nNon-prenex formula:")
    print(phi.pretty())
    print("value              ->", solve(phi).outcome)

    # The partial order: y1 (2) precedes z1 (3) but not z2 (5).
    print("y1 ≺ z1            ->", phi.prefix.prec(2, 3))
    print("y1 ≺ z2            ->", phi.prefix.prec(2, 5))
    print("prefix level       ->", phi.prefix.prefix_level)


def solver_features() -> None:
    """Feature switches and statistics."""
    phi = QBF.prenex(
        [(EXISTS, [1, 2]), (FORALL, [3, 4]), (EXISTS, [5, 6])],
        [
            (1, 3, 5), (-1, 3, -5), (2, 4, 6), (-2, -4, 6),
            (1, -3, 6), (2, -4, -5), (-1, -2, 5), (5, 6),
        ],
    )
    full = solve(phi)
    plain = solve(phi, SolverConfig(learn_clauses=False, learn_cubes=False,
                                    pure_literals=False))
    print("\nWith learning     ->", full.outcome, "decisions:", full.stats.decisions)
    print("Plain Q-DLL       ->", plain.outcome, "decisions:", plain.stats.decisions)
    print("learned nogoods   ->", full.stats.learned_clauses)
    print("learned goods     ->", full.stats.learned_cubes)


def serialization() -> None:
    """QTREE keeps the quantifier tree; QDIMACS needs prenex form."""
    phi = QBF.tree(
        [(EXISTS, (1,), ((FORALL, (2,), ((EXISTS, (3,), ()),)),))],
        [(1, 2, 3), (-1, -2, -3)],
    )
    text = qtree.dumps(phi, comments=["quickstart example"])
    print("\nQTREE serialization:")
    print(text)
    assert qtree.loads(text) == phi


def main() -> None:
    prenex_basics()
    non_prenex_basics()
    solver_features()
    serialization()


if __name__ == "__main__":
    main()
