"""A small Section VII-A/VII-D study: strategies and scope minimization.

Generates NCF instances, solves them with QUBE(PO) on the tree and with
QUBE(TO) under all four prenexing strategies, then demonstrates the reverse
direction: a prenex instance whose hidden structure miniscoping recovers.

Run:  python examples/prenexing_study.py
"""

from repro.evalx.runner import Budget, solve_po, solve_to
from repro.generators.fixed import FixedParams, generate_fixed
from repro.generators.ncf import NcfParams, generate_ncf
from repro.prenexing.miniscoping import miniscope, structure_ratio
from repro.prenexing.strategies import STRATEGIES, strategy_symbol

BUDGET = Budget(decisions=4000, seconds=10.0)


def strategy_comparison() -> None:
    print("NCF instances: QUBE(PO) vs QUBE(TO) under each strategy")
    print("(cost in decisions; T = budget exhausted)")
    header = "%-22s %8s" % ("instance", "PO")
    for name in STRATEGIES:
        header += " %8s" % strategy_symbol(name)
    print(header)
    for seed in range(5):
        params = NcfParams(dep=6, var=4, cls=12, lpc=5, seed=seed)
        phi = generate_ncf(params)
        po = solve_po(phi, params.label, budget=BUDGET)
        line = "%-22s %8s" % (params.label, _fmt(po))
        for name in STRATEGIES:
            to = solve_to(phi, params.label, strategy=name, budget=BUDGET)
            line += " %8s" % _fmt(to)
        print(line)


def _fmt(measurement) -> str:
    return "%dT" % measurement.cost if measurement.timed_out else str(measurement.cost)


def miniscoping_demo() -> None:
    print("\nScope minimization on a prenex instance with hidden structure:")
    params = FixedParams(family="interleaved", groups=3, blocks_per_group=3,
                         block_size=1, clauses_per_group=7, seed=4)
    phi = generate_fixed(params)
    tree = miniscope(phi)
    print("  input prefix :", phi.prefix)
    print("  miniscoped   :", tree.prefix)
    print("  PO/TO ratio  : %.0f%% of (∃,∀) pairs freed" % (100 * structure_ratio(phi, tree)))
    to = solve_to(phi, params.label, budget=BUDGET)
    po = solve_po(tree, params.label, budget=BUDGET)
    print("  QUBE(TO) on the total order : %s decisions" % _fmt(to))
    print("  QUBE(PO) on the tree        : %s decisions" % _fmt(po))
    assert to.timed_out or po.timed_out or to.outcome is po.outcome


def main() -> None:
    strategy_comparison()
    miniscoping_demo()


if __name__ == "__main__":
    main()
