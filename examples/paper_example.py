"""The paper's running example, end to end.

Reconstructs equation (1), prints the Section VI d/f stamps, regenerates
the Figure 2 search tree with the recursive Q-DLL, compares the four
prenexing strategies of Section V, and shows the Section VII-C learning
asymmetry (shorter goods under the tree prefix).

Run:  python examples/paper_example.py
"""

from repro import SolverConfig, paper_example, q_dll, solve
from repro.core.constraints import existential_reduce
from repro.core.literals import EXISTS, FORALL
from repro.core.solver import QdpllSolver
from repro.prenexing.strategies import STRATEGIES, prenex, strategy_symbol

NAMES = {1: "x0", 2: "y1", 3: "x1", 4: "x2", 5: "y2", 6: "x3", 7: "x4"}


def show_stamps() -> None:
    phi = paper_example()
    print("Equation (1) as a quantifier tree:")
    print(" ", phi.prefix)
    print("\nSection VI DFS stamps (compare the worked example):")
    for v in phi.prefix.variables:
        print(
            "  %-3s d=%d f=%d level=%d"
            % (NAMES[v], phi.prefix.d(v), phi.prefix.f(v), phi.prefix.level(v))
        )
    print("\nOrder checks via equation (13):")
    for a, b in [(1, 3), (2, 3), (2, 6), (3, 4)]:
        print("  %s ≺ %s  ->  %s" % (NAMES[a], NAMES[b], phi.prefix.prec(a, b)))


def figure2_tree() -> None:
    """Drive the recursive Q-DLL along the Figure 2 branching order."""

    def fig2_heuristic(formula):
        p = formula.prefix
        tops = p.top_variables()
        exist_tops = [v for v in tops if p.quant(v) is EXISTS]
        if exist_tops:
            return -min(exist_tops) if 1 in exist_tops else min(exist_tops)

        def weight(y):
            sub = {y} | {w for w in p.variables if p.prec(y, w)}
            return sum(1 for c in formula.clauses if any(abs(l) in sub for l in c.lits))

        return -max(tops, key=weight)

    value, stats, tree = q_dll(paper_example(), heuristic=fig2_heuristic, record_tree=True)
    print("\nFigure 2 search tree (Q-DLL on the non-prenex formula):")
    print(tree.render())
    print("value=%s  branches=%d (the optimal tree assigns 8 branch literals)"
          % (value, stats.branches))


def strategies() -> None:
    phi = paper_example()
    print("\nPrenexing strategies (Section V):")
    for name in STRATEGIES:
        flat = prenex(phi, name)
        blocks = " ".join(
            "%s{%s}" % (q.symbol, ",".join(NAMES[v] for v in vs))
            for q, vs in flat.prefix.linear_blocks()
        )
        print("  %s  ->  %s" % (strategy_symbol(name), blocks))
    print("(∃↑∀↑ reproduces the paper's equation (7): x0 ≺ y1,y2 ≺ x1..x4)")


def learning_asymmetry() -> None:
    """The Section VII-C worked example: prefixes (18) vs (19).

    In the 2-bit diameter problem, the path variables x0, x1 are unordered
    w.r.t. the universals under the tree prefix (18) but precede them under
    the total order (19). The learned good therefore shrinks to {y0_1}
    under the tree while the total order keeps all five literals.
    """
    from repro.core.prefix import Prefix

    # Variables: x0_1=1 x0_2=2 x1_1=3 x1_2=4 x2_1=5 x2_2=6
    #            y0_1=7 y0_2=8 y1_1=9 y1_2=10  aux=11
    names = {1: "x0_1", 2: "x0_2", 3: "x1_1", 4: "x1_2", 5: "x2_1", 6: "x2_2",
             7: "y0_1", 8: "y0_2", 9: "y1_1", 10: "y1_2", 11: "x"}
    tree18 = Prefix.tree([
        (EXISTS, (5, 6), ((FORALL, (7, 8, 9, 10), ((EXISTS, (11,), ()),)),)),
        (EXISTS, (1, 2, 3, 4), ()),
    ])
    total19 = Prefix.linear([
        (EXISTS, (1, 2, 3, 4, 5, 6)),
        (FORALL, (7, 8, 9, 10)),
        (EXISTS, (11,)),
    ])
    good = (1, 2, 3, 4, 7)  # {x0_1, x0_2, x1_1, x1_2, y0_1}
    reduced18 = existential_reduce(good, tree18)
    reduced19 = existential_reduce(good, total19)
    print("\nSection VII-C: good {x0_1, x0_2, x1_1, x1_2, y0_1} after reduction:")
    print("  prefix (18), tree  ->", [names[abs(l)] for l in reduced18])
    print("  prefix (19), total ->", [names[abs(l)] for l in reduced19])
    print("(the tree's good {y0_1} lets y0_1 be flipped as unit immediately;")
    print(" the total order's good only fires after all the x literals hold)")


def engines() -> None:
    phi = paper_example()
    po = solve(phi)
    to = solve(prenex(phi, "eu_au"))
    print("\nQDPLL engines: PO=%s (%d decisions)  TO=%s (%d decisions)"
          % (po.outcome.value, po.stats.decisions, to.outcome.value, to.stats.decisions))


def main() -> None:
    show_stamps()
    figure2_tree()
    strategies()
    learning_asymmetry()
    engines()


if __name__ == "__main__":
    main()
