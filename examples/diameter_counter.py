"""Diameter calculation of sequential circuits (Section VII-C), end to end.

Builds the parametric models of the DIA suite, encodes φ_n per equations
(14)/(15) (tree form) and (16) (prenex form), computes diameters with both
QUBE variants, and validates everything against explicit-state BFS.

Run:  python examples/diameter_counter.py
"""

from repro.core.solver import SolverConfig
from repro.smv.diameter import compute_diameter, diameter_qbf
from repro.smv.models import CounterModel, DmeModel, RingModel, SemaphoreModel
from repro.smv.reachability import eccentricity, num_reachable


def describe_encoding() -> None:
    model = CounterModel(2)
    phi = diameter_qbf(model, 1, "tree")
    flat = diameter_qbf(model, 1, "prenex")
    print("counter<2>, n=1:")
    print("  tree form   (eq. 14):", phi.prefix)
    print("  prenex form (eq. 16):", flat.prefix)
    print("  matrix: %d clauses over %d variables" % (phi.num_clauses, phi.num_vars))


def diameters() -> None:
    config = SolverConfig(max_decisions=20000, max_seconds=30.0)
    print("\nDiameters via the QBF loop (first n with φ_n false):")
    print("%-14s %6s %10s %10s %12s %12s" % ("model", "BFS", "PO", "TO", "PO-decisions", "TO-decisions"))
    for model in [CounterModel(2), CounterModel(3), RingModel(3),
                  DmeModel(4), SemaphoreModel(2), SemaphoreModel(3)]:
        reference = eccentricity(model)
        po = compute_diameter(model, form="tree", config=config)
        to = compute_diameter(model, form="prenex", config=config)
        print(
            "%-14s %6d %10s %10s %12d %12d"
            % (model.name, reference,
               po.diameter if po.diameter is not None else "timeout",
               to.diameter if to.diameter is not None else "timeout",
               po.total_decisions, to.total_decisions)
        )
        if po.diameter is not None:
            assert po.diameter == reference, (model.name, po.diameter, reference)
        if to.diameter is not None:
            assert to.diameter == reference


def state_spaces() -> None:
    print("\nGround-truth state spaces (explicit BFS):")
    for model in [CounterModel(3), RingModel(3), DmeModel(4), SemaphoreModel(2)]:
        print(
            "  %-12s %3d reachable states, eccentricity %d"
            % (model.name, num_reachable(model), eccentricity(model))
        )


def main() -> None:
    describe_encoding()
    state_spaces()
    diameters()


if __name__ == "__main__":
    main()
